(* End-to-end tests of the sharded front tier (lib/server/front.ml):
   a forked child runs [Front.run] with real worker processes while
   this process talks to it over TCP.  The front is forked rather than
   run in-process because [Front.run] forks workers, and fork is only
   safe while the process owns no domains — a dedicated child keeps
   that invariant independent of what the test runner does.

   Session-to-worker affinity is proven behaviorally: session stores
   are per-worker, so if routing were ever inconsistent a follow-up
   query would land on a worker that never saw the session and come
   back [unknown_session]. *)

module Json = Bbc.Json
module Net = Bbc_server.Net
module Front = Bbc_server.Front
module Engine = Bbc_server.Engine
module Shard = Bbc_server.Shard

(* ---------------------------------------------------------------- *)
(* Front child lifecycle *)

type front = { pid : int; endpoint : Net.endpoint; pids : int list }

let start_front ~workers =
  let l = Net.listen_tcp ~host:"127.0.0.1" ~port:0 () in
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (try
         Front.run
           ~on_ready:(fun h ->
             let line =
               String.concat " "
                 (List.map string_of_int (Front.worker_pids h))
               ^ "\n"
             in
             let b = Bytes.of_string line in
             ignore (Unix.write w b 0 (Bytes.length b));
             Unix.close w)
           ~engine:(Engine.default_config ())
           ~workers [ l ]
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Unix.close w;
      Net.close_listener l;
      let ic = Unix.in_channel_of_descr r in
      let pids =
        match input_line ic with
        | line ->
            List.filter_map int_of_string_opt (String.split_on_char ' ' line)
        | exception End_of_file ->
            Alcotest.fail "front child died before reporting worker pids"
      in
      close_in ic;
      if List.length pids <> workers then
        Alcotest.failf "expected %d worker pids, got %d" workers
          (List.length pids);
      { pid; endpoint = l.Net.l_endpoint; pids }

(* Wait for [pid] to exit, failing the test on timeout or abnormal
   status; returns the raw status for exit-code checks. *)
let wait_exit ?(timeout_s = 30.0) pid =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Alcotest.failf "front pid %d did not exit within %.0fs" pid timeout_s
        end;
        Unix.sleepf 0.02;
        loop ()
    | _, status -> status
  in
  loop ()

let kill_front f =
  (try Unix.kill f.pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] f.pid) with Unix.Unix_error _ -> ()

(* Run [body] against a fresh front; the front is killed on any
   failure so a broken test can't leak process trees into later
   ones. *)
let with_front ~workers body =
  let f = start_front ~workers in
  match body f with
  | v ->
      kill_front f;
      v
  | exception e ->
      kill_front f;
      raise e

(* ---------------------------------------------------------------- *)
(* Blocking line-protocol client *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect endpoint =
  match Net.connect endpoint with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok fd ->
      (* A hung server must fail the test, not wedge the runner. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
      }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let rpc c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc;
  try input_line c.ic
  with End_of_file | Sys_error _ ->
    Alcotest.failf "no response to %s" line

let req id meth params =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str id);
         ("method", Json.Str meth);
         ("params", Json.Obj params);
       ])

let parse r =
  match Json.of_string r with
  | Ok v -> v
  | Error e -> Alcotest.failf "bad response %S: %s" r e

let ok_payload r =
  match Json.member "ok" (parse r) with
  | Some p -> p
  | None -> Alcotest.failf "expected ok response, got %s" r

let error_code r =
  match Option.bind (Json.member "error" (parse r)) (Json.member "code") with
  | Some (Json.Str c) -> c
  | _ -> Alcotest.failf "expected error response, got %s" r

let gen_session c ?(n = 8) () =
  let p =
    ok_payload
      (rpc c (req "g" "gen" [ ("name", Json.Str "ring"); ("n", Json.Int n) ]))
  in
  match Json.member "session" p with
  | Some (Json.Str sid) -> sid
  | _ -> Alcotest.fail "gen returned no session id"

let cost c sid = rpc c (req ("c-" ^ sid) "cost" [ ("session", Json.Str sid) ])

let stats_int c field =
  let p = ok_payload (rpc c (req "st" "stats" [])) in
  match Option.bind (Json.member field p) Json.to_int with
  | Some i -> i
  | None -> Alcotest.failf "stats missing int field %S" field

(* ---------------------------------------------------------------- *)

(* Two workers, twenty sessions: the front mints s0..s19, which split
   10/10 across the shards (pinned in test_shard), so both workers
   hold live sessions.  Interleaved cost queries across two client
   connections must all answer Ok — any routing inconsistency would
   surface as unknown_session from the shard that never built the
   session. *)
let test_affinity () =
  with_front ~workers:2 (fun f ->
      let c = connect f.endpoint in
      let sids = List.init 20 (fun _ -> gen_session c ()) in
      let shards =
        List.map (fun sid -> Shard.of_session ~workers:2 sid) sids
      in
      Alcotest.(check bool) "both shards populated" true
        (List.mem 0 shards && List.mem 1 shards);
      let c2 = connect f.endpoint in
      for round = 1 to 3 do
        List.iter
          (fun sid ->
            let cl = if round mod 2 = 0 then c2 else c in
            ignore (ok_payload (cost cl sid)))
          sids
      done;
      close_client c;
      close_client c2)

(* SIGKILL one worker mid-service.  Sessions on its shard are lost —
   queries for them must answer with an error (internal if the death
   raced an in-flight request, unknown_session from the respawned
   worker afterwards), the other shard keeps answering, new sessions
   still build, and stats reports the respawn. *)
let test_worker_crash () =
  with_front ~workers:2 (fun f ->
      let c = connect f.endpoint in
      let sids = List.init 20 (fun _ -> gen_session c ()) in
      let by_shard s =
        List.filter (fun sid -> Shard.of_session ~workers:2 sid = s) sids
      in
      let victim_shard = 0 in
      let victim_pid = List.nth f.pids victim_shard in
      Unix.kill victim_pid Sys.sigkill;
      List.iter
        (fun sid ->
          let code = error_code (cost c sid) in
          if code <> "unknown_session" && code <> "internal" then
            Alcotest.failf "dead shard answered %S for %s" code sid)
        (by_shard victim_shard);
      List.iter
        (fun sid -> ignore (ok_payload (cost c sid)))
        (by_shard (1 - victim_shard));
      (* The replacement worker serves its shard again. *)
      let sid = gen_session c () in
      ignore (ok_payload (cost c sid));
      let respawns = stats_int c "respawns" in
      if respawns < 1 then Alcotest.failf "expected respawns >= 1, got %d" respawns;
      close_client c)

let check_clean_exit f =
  match wait_exit f.pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "front exited %d" n
  | Unix.WSIGNALED s -> Alcotest.failf "front killed by signal %d" s
  | Unix.WSTOPPED _ -> Alcotest.fail "front stopped"

(* A served shutdown request drains the workers and exits 0. *)
let test_shutdown_request () =
  with_front ~workers:2 (fun f ->
      let c = connect f.endpoint in
      let sid = gen_session c () in
      ignore (ok_payload (cost c sid));
      let ack = ok_payload (rpc c (req "q" "shutdown" [])) in
      Alcotest.(check bool) "stopping acked" true
        (Json.member "stopping" ack = Some (Json.Bool true));
      close_client c;
      check_clean_exit f;
      (* Workers were reaped by the front, not left to init. *)
      List.iter
        (fun wpid ->
          match Unix.kill wpid 0 with
          | () -> Alcotest.failf "worker %d still alive after drain" wpid
          | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ())
        f.pids)

(* SIGTERM triggers the same graceful drain. *)
let test_sigterm () =
  with_front ~workers:2 (fun f ->
      let c = connect f.endpoint in
      let sid = gen_session c () in
      ignore (ok_payload (cost c sid));
      close_client c;
      Unix.kill f.pid Sys.sigterm;
      check_clean_exit f)

let () =
  Alcotest.run "bbc-front"
    [
      ( "front",
        [
          Alcotest.test_case "session affinity across shards" `Quick
            test_affinity;
          Alcotest.test_case "worker crash: isolated errors + respawn" `Quick
            test_worker_crash;
          Alcotest.test_case "graceful drain on shutdown request" `Quick
            test_shutdown_request;
          Alcotest.test_case "graceful drain on SIGTERM" `Quick test_sigterm;
        ] );
    ]
