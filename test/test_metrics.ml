module M = Bbc.Metrics
module I = Bbc.Instance
module C = Bbc.Config

let test_node_lower_bound_small () =
  (* n=4, k=1: best layout is a path: 1 + 2 + 3 = 6. *)
  Alcotest.(check int) "k=1" 6 (M.node_cost_lower_bound ~n:4 ~k:1);
  (* n=4, k=3: everyone at distance 1. *)
  Alcotest.(check int) "k=3" 3 (M.node_cost_lower_bound ~n:4 ~k:3);
  (* n=7, k=2: 2 at 1, 4 at 2 = 10. *)
  Alcotest.(check int) "k=2" 10 (M.node_cost_lower_bound ~n:7 ~k:2)

let test_social_lower_bound () =
  Alcotest.(check int) "n * node bound" (7 * 10) (M.social_cost_lower_bound ~n:7 ~k:2)

let test_lower_bound_is_achieved_by_ring () =
  (* k=1: the ring achieves exactly the lower bound. *)
  let n = 6 in
  let inst = I.uniform ~n ~k:1 in
  let ring = C.of_lists n (Array.init n (fun v -> [ (v + 1) mod n ])) in
  Alcotest.(check int) "ring social = bound" (M.social_cost_lower_bound ~n ~k:1)
    (Bbc.Eval.social_cost inst ring)

let test_lower_bound_no_overflow () =
  let b = M.node_cost_lower_bound ~n:1_000_000 ~k:2 in
  Alcotest.(check bool) "positive and sane" true (b > 0 && b < max_int / 2)

let test_eccentricity_lower_bound () =
  Alcotest.(check int) "n=4 k=3" 1 (M.eccentricity_lower_bound ~n:4 ~k:3);
  Alcotest.(check int) "n=7 k=2" 2 (M.eccentricity_lower_bound ~n:7 ~k:2);
  Alcotest.(check int) "n=8 k=2" 3 (M.eccentricity_lower_bound ~n:8 ~k:2);
  Alcotest.(check int) "n=2" 1 (M.eccentricity_lower_bound ~n:2 ~k:1)

let test_floor_log () =
  Alcotest.(check int) "log2 8" 3 (M.floor_log ~base:2 8);
  Alcotest.(check int) "log2 7" 2 (M.floor_log ~base:2 7);
  Alcotest.(check int) "log3 27" 3 (M.floor_log ~base:3 27);
  Alcotest.(check int) "log of 1" 0 (M.floor_log ~base:5 1)

let test_fairness_on_ring () =
  let n = 5 in
  let inst = I.uniform ~n ~k:1 in
  let ring = C.of_lists n (Array.init n (fun v -> [ (v + 1) mod n ])) in
  let f = M.fairness inst ring in
  Alcotest.(check int) "min = max on the ring" f.min_cost f.max_cost;
  Alcotest.(check (float 1e-9)) "ratio 1" 1.0 f.ratio;
  Alcotest.(check int) "spread 0" 0 f.spread

let test_lemma1_bounds_positive () =
  let b = M.lemma1_spread_bound ~n:100 ~k:2 in
  Alcotest.(check int) "spread bound n(1+log)" (100 + (100 * 6)) b;
  let r = M.lemma1_ratio_bound ~n:100 ~k:2 in
  Alcotest.(check bool) "ratio bound sane" true (r > 1.0 && r < 10.0)

let test_anarchy_ratio () =
  let n = 6 in
  let inst = I.uniform ~n ~k:1 in
  let ring = C.of_lists n (Array.init n (fun v -> [ (v + 1) mod n ])) in
  Alcotest.(check (float 1e-9)) "ring is optimal" 1.0 (M.anarchy_ratio inst ring)

let test_anarchy_ratio_requires_uniform () =
  let inst = I.of_weights ~k:1 [| [| 0; 1 |]; [| 1; 0 |] |] in
  let c = C.of_lists 2 [| [ 1 ]; [ 0 ] |] in
  Alcotest.(check bool) "rejects general instances" true
    (try
       ignore (M.anarchy_ratio inst c);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "node lower bound" `Quick test_node_lower_bound_small;
    Alcotest.test_case "social lower bound" `Quick test_social_lower_bound;
    Alcotest.test_case "ring achieves k=1 bound" `Quick test_lower_bound_is_achieved_by_ring;
    Alcotest.test_case "lower bound overflow safety" `Quick test_lower_bound_no_overflow;
    Alcotest.test_case "eccentricity lower bound" `Quick test_eccentricity_lower_bound;
    Alcotest.test_case "floor_log" `Quick test_floor_log;
    Alcotest.test_case "fairness on the ring" `Quick test_fairness_on_ring;
    Alcotest.test_case "lemma 1 bounds" `Quick test_lemma1_bounds_positive;
    Alcotest.test_case "anarchy ratio" `Quick test_anarchy_ratio;
    Alcotest.test_case "anarchy ratio domain" `Quick test_anarchy_ratio_requires_uniform;
  ]
