module D = Bbc_graph.Digraph
module Dot = Bbc_graph.Dot

let test_basic_output () =
  let g = D.of_unit_edges 3 [ (0, 1); (1, 2) ] in
  let s = Dot.to_dot g in
  Alcotest.(check bool) "digraph header" true
    (String.length s > 10 && String.sub s 0 9 = "digraph g");
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge 0->1" true (contains "0 -> 1;");
  Alcotest.(check bool) "edge 1->2" true (contains "1 -> 2;");
  Alcotest.(check bool) "closing brace" true (contains "}")

let test_lengths_shown_when_nonunit () =
  let g = D.of_edges 2 [ (0, 1, 5) ] in
  let s = Dot.to_dot g in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "label with length" true (contains "label=\"5\"")

let test_custom_labels () =
  let g = D.of_unit_edges 2 [ (0, 1) ] in
  let s = Dot.to_dot ~name:"willow" ~vertex_label:(fun v -> Printf.sprintf "n%d" v) g in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "graph name" true (contains "digraph willow");
  Alcotest.(check bool) "vertex label" true (contains "label=\"n1\"")

let suite =
  [
    Alcotest.test_case "basic output" `Quick test_basic_output;
    Alcotest.test_case "lengths shown" `Quick test_lengths_shown_when_nonunit;
    Alcotest.test_case "custom labels" `Quick test_custom_labels;
  ]
