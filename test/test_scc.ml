module D = Bbc_graph.Digraph
module S = Bbc_graph.Scc
module G = Bbc_graph.Generators

let test_ring_is_one_component () =
  let g = G.directed_ring 8 in
  let scc = S.compute g in
  Alcotest.(check int) "one SCC" 1 scc.count;
  Alcotest.(check bool) "strongly connected" true (S.is_strongly_connected g)

let test_path_all_singletons () =
  let g = G.directed_path 5 in
  let scc = S.compute g in
  Alcotest.(check int) "five SCCs" 5 scc.count;
  Alcotest.(check bool) "not strongly connected" false (S.is_strongly_connected g)

let test_two_rings_bridged () =
  (* ring {0,1,2}, ring {3,4,5}, bridge 2 -> 3 *)
  let g = D.of_unit_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ] in
  let scc = S.compute g in
  Alcotest.(check int) "two SCCs" 2 scc.count;
  Alcotest.(check bool) "0,1,2 together" true
    (scc.component.(0) = scc.component.(1) && scc.component.(1) = scc.component.(2));
  Alcotest.(check bool) "3,4,5 together" true
    (scc.component.(3) = scc.component.(4) && scc.component.(4) = scc.component.(5));
  (* Reverse topological ids: the sink component {3,4,5} gets the lower id. *)
  Alcotest.(check bool) "sink has smaller id" true (scc.component.(3) < scc.component.(0))

let test_members_and_sizes () =
  let g = D.of_unit_edges 5 [ (0, 1); (1, 0); (2, 3) ] in
  let scc = S.compute g in
  let sizes = S.sizes scc in
  Alcotest.(check int) "component count" 4 scc.count;
  Alcotest.(check int) "total size" 5 (Array.fold_left ( + ) 0 sizes);
  let c01 = scc.component.(0) in
  Alcotest.(check (list int)) "members of {0,1}" [ 0; 1 ] (S.members scc c01)

let test_condensation_is_dag () =
  let rng = Bbc_prng.Splitmix.create 4 in
  for _ = 1 to 10 do
    let g = G.gnp rng ~n:25 ~p:0.08 in
    let scc = S.compute g in
    let cond = S.condensation g scc in
    let scc2 = S.compute cond in
    (* A DAG's SCCs are all singletons. *)
    Alcotest.(check int) "condensation is a DAG" (D.n cond) scc2.count
  done

let test_sink_components () =
  let g = D.of_unit_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ] in
  let scc = S.compute g in
  (match S.sink_components g scc with
  | [ c ] -> Alcotest.(check (list int)) "sink members" [ 3; 4; 5 ] (S.members scc c)
  | other -> Alcotest.fail (Printf.sprintf "expected one sink, got %d" (List.length other)));
  let iso = D.create 3 in
  Alcotest.(check int) "all isolated nodes are sinks" 3
    (List.length (S.sink_components iso (S.compute iso)))

let test_empty_graph () =
  let g = D.create 0 in
  Alcotest.(check bool) "vacuously connected" true (S.is_strongly_connected g)

let test_deep_graph () =
  let g = G.directed_ring 100_000 in
  Alcotest.(check bool) "large ring, iterative Tarjan" true (S.is_strongly_connected g)

let test_component_edges_respect_order () =
  (* Every cross-component edge goes from a higher id to a lower id. *)
  let rng = Bbc_prng.Splitmix.create 17 in
  for _ = 1 to 10 do
    let g = G.gnp rng ~n:30 ~p:0.07 in
    let scc = S.compute g in
    D.iter_edges g (fun u v _ ->
        if scc.component.(u) <> scc.component.(v) then
          Alcotest.(check bool) "reverse topological ids" true
            (scc.component.(u) > scc.component.(v)))
  done

let suite =
  [
    Alcotest.test_case "ring" `Quick test_ring_is_one_component;
    Alcotest.test_case "path" `Quick test_path_all_singletons;
    Alcotest.test_case "two rings bridged" `Quick test_two_rings_bridged;
    Alcotest.test_case "members and sizes" `Quick test_members_and_sizes;
    Alcotest.test_case "condensation is a DAG" `Quick test_condensation_is_dag;
    Alcotest.test_case "sink components" `Quick test_sink_components;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "100k-node ring (iterative)" `Quick test_deep_graph;
    Alcotest.test_case "component id order" `Quick test_component_edges_respect_order;
  ]
