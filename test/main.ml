(* Test entry point: one Alcotest suite per module of the library. *)

let () =
  Alcotest.run "bbc"
    [
      ("prng", Test_prng.suite);
      ("digraph", Test_digraph.suite);
      ("heap", Test_heap.suite);
      ("paths", Test_paths.suite);
      ("csr", Test_csr.suite);
      ("scc", Test_scc.suite);
      ("traversal", Test_traversal.suite);
      ("graph-metrics", Test_graph_metrics.suite);
      ("generators", Test_generators.suite);
      ("dot", Test_dot.suite);
      ("apsp", Test_apsp.suite);
      ("centrality", Test_centrality.suite);
      ("flow", Test_flow.suite);
      ("sat", Test_sat.suite);
      ("group", Test_group.suite);
      ("instance", Test_instance.suite);
      ("config", Test_config.suite);
      ("eval", Test_eval.suite);
      ("best-response", Test_best_response.suite);
      ("stability", Test_stability.suite);
      ("exhaustive", Test_exhaustive.suite);
      ("dynamics", Test_dynamics.suite);
      ("metrics", Test_metrics.suite);
      ("willows", Test_willows.suite);
      ("willows-sampling", Test_willows_sampling.suite);
      ("cayley-game", Test_cayley_game.suite);
      ("constructions", Test_constructions.suite);
      ("gadget", Test_gadget.suite);
      ("reduction", Test_reduction.suite);
      ("fractional", Test_fractional.suite);
      ("potential", Test_potential.suite);
      ("social-optimum", Test_social_optimum.suite);
      ("codec", Test_codec.suite);
      ("json", Test_json.suite);
      ("gen-instance", Test_gen_instance.suite);
      ("fabrikant", Test_fabrikant.suite);
      ("experiments-table", Test_table.suite);
      ("properties", Test_props.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("incremental", Test_incremental.suite);
      ("bigbench", Test_bigbench.suite);
      ("server", Test_server.suite);
      ("shard", Test_shard.suite);
      ("fuzz", Test_fuzz.suite);
      ("campaign", Test_campaign.suite);
      ("experiments-registry", Test_experiments.suite);
    ]
