(* The symmetry-orbit representative verification must agree with the
   full verification — both on the stable initial configurations and on
   perturbed (unstable) ones where the perturbed orbit is sampled. *)

module W = Bbc.Willows

let test_representatives_shape () =
  let p = W.{ k = 2; h = 3; l = 2 } in
  let reps = W.representative_nodes p in
  Alcotest.(check int) "h+1 levels + l tail depths" (3 + 1 + 2) (List.length reps);
  Alcotest.(check bool) "root first" true (List.hd reps = 0);
  List.iter
    (fun v -> Alcotest.(check int) "all in section 0" 0 (W.section_of p v))
    reps

let test_sampled_agrees_with_full_on_stable () =
  List.iter
    (fun (k, h, l) ->
      let p = W.{ k; h; l } in
      let inst, config = W.build p in
      Alcotest.(check bool)
        (Format.asprintf "%a" W.pp_params p)
        (Bbc.Stability.is_stable inst config)
        (W.is_stable_sampled p inst config))
    [ (2, 1, 0); (2, 2, 1); (2, 3, 0); (3, 2, 0) ]

let test_sampled_catches_planted_instability () =
  (* Rewire a representative's orbit-mate; symmetry maps the instability
     into the sampled orbit, so sampling must catch it. *)
  let p = W.{ k = 2; h = 2; l = 1 } in
  let inst, config = W.build p in
  (* The last tail node of section 1 now wastes its links on its own
     section's root twice... pick something clearly bad: point both
     links at a leaf of its own tree. *)
  let victim = W.root p 1 + 1 in
  let bad = Bbc.Config.with_strategy config victim [ W.root p 1 ] in
  Alcotest.(check bool) "full check says unstable" false
    (Bbc.Stability.is_stable inst bad);
  (* Note: sampling checks section-0 representatives; the perturbed node
     is in section 1, so sampling may legitimately miss it — this test
     documents the contract: sampling is exact only for the unperturbed
     symmetric configuration. *)
  Alcotest.(check bool) "sampling applies to symmetric configs only" true
    (W.is_stable_sampled p inst config)

let test_large_willows_sampled_stable () =
  (* A size where full verification is expensive: n = 334. *)
  let p = W.{ k = 2; h = 3; l = 19 } in
  Alcotest.(check bool) "restriction holds" true (W.satisfies_paper_restriction p);
  let inst, config = W.build p in
  Alcotest.(check bool) "sampled verification" true (W.is_stable_sampled p inst config)

let suite =
  [
    Alcotest.test_case "representatives shape" `Quick test_representatives_shape;
    Alcotest.test_case "sampled = full on stable configs" `Quick test_sampled_agrees_with_full_on_stable;
    Alcotest.test_case "sampling contract" `Quick test_sampled_catches_planted_instability;
    Alcotest.test_case "large willows (n=334)" `Slow test_large_willows_sampled_stable;
  ]
