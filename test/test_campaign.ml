(* Campaign subsystem: spec grid expansion and codec, trial
   determinism against direct Dynamics.run, checkpoint atomicity and
   replay, aggregator order-independence, and the runner's crash-resume
   byte-identity contract (simulated by seeding a fresh directory with a
   prefix of another run's chunks). *)

module Json = Bbc.Json
module Trial = Bbc.Trial
module Spec = Bbc_campaign.Spec
module Checkpoint = Bbc_campaign.Checkpoint
module Aggregate = Bbc_campaign.Aggregate
module Runner = Bbc_campaign.Runner

let spec : Spec.t =
  {
    name = "t";
    seed = 42;
    seeds_per_point = 5;
    max_rounds = 50;
    points =
      [
        {
          generator = Trial.Sparse { zero_pct = 50; max_weight = 3 };
          n = 8;
          k = 2;
          h = 2;
          l = 3;
        };
        { generator = Trial.Catalog "ring"; n = 6; k = 1; h = 2; l = 3 };
      ];
    inits = [ Trial.Empty; Trial.Random_start ];
    schedulers = [ Trial.Round_robin; Trial.Max_cost_first ];
    policies = [ Trial.Exact ];
    objectives = [ Bbc.Objective.Sum ];
  }

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "bbc-campaign-test-%d-%d" (Unix.getpid ()) !counter)
    in
    (match Bbc_campaign.Checkpoint.ensure_dir dir with
    | Ok () -> ()
    | Error m -> failwith m);
    dir

(* ---------------------------------------------------------------- *)

let test_grid_expansion () =
  Alcotest.(check int) "unit count" 40 (Spec.unit_count spec);
  (* Every unit decodes to a valid trial; labels partition the grid into
     points x inits x schedulers cells, each seen seeds_per_point
     times. *)
  let labels = Hashtbl.create 16 in
  for i = 0 to Spec.unit_count spec - 1 do
    let t = Spec.unit spec i in
    (match Trial.validate t with
    | Ok () -> ()
    | Error m -> Alcotest.failf "unit %d invalid: %s" i m);
    let l = Trial.label t in
    Hashtbl.replace labels l (1 + Option.value ~default:0 (Hashtbl.find_opt labels l))
  done;
  Alcotest.(check int) "cells" 8 (Hashtbl.length labels);
  Hashtbl.iter
    (fun l c -> Alcotest.(check int) (l ^ " multiplicity") spec.seeds_per_point c)
    labels;
  (* Per-unit seeds are distinct (pairwise, across the whole grid). *)
  let seeds = List.init (Spec.unit_count spec) (fun i -> (Spec.unit spec i).Trial.seed) in
  Alcotest.(check int)
    "seeds distinct"
    (List.length seeds)
    (List.length (List.sort_uniq compare seeds));
  Alcotest.(check bool)
    "out of range rejected" true
    (match Spec.unit spec 40 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_spec_codec () =
  let rendered = Json.to_string (Spec.to_json spec) in
  match Spec.of_json (Spec.to_json spec) with
  | Error m -> Alcotest.fail m
  | Ok spec' ->
      Alcotest.(check bool) "decode/encode fixpoint" true (spec' = spec);
      Alcotest.(check string)
        "canonical rendering" rendered
        (Json.to_string (Spec.to_json spec'));
      (* A terse hand-written spec decodes with defaults applied. *)
      let terse =
        {|{"type":"bbc-campaign","seeds_per_point":3,
           "points":[{"generator":{"kind":"budgets","max_budget":4},"n":7,"k":1}]}|}
      in
      (match Spec.of_string terse with
      | Error m -> Alcotest.fail m
      | Ok s ->
          Alcotest.(check int) "default seed" 1 s.Spec.seed;
          Alcotest.(check int) "default max_rounds" 200 s.Spec.max_rounds;
          Alcotest.(check int) "default h" 2 (List.hd s.Spec.points).Spec.h;
          Alcotest.(check bool)
            "default axes" true
            (s.Spec.inits = [ Trial.Empty ]
            && s.Spec.schedulers = [ Trial.Round_robin ]
            && s.Spec.policies = [ Trial.Exact ]
            && s.Spec.objectives = [ Bbc.Objective.Sum ]));
      (* Junk is rejected with a decode or validation error. *)
      List.iter
        (fun bad ->
          match Spec.of_string bad with
          | Ok _ -> Alcotest.failf "accepted junk spec %s" bad
          | Error _ -> ())
        [
          {|{"seeds_per_point":3,"points":[]}|};
          {|{"type":"bbc-campaign","points":[{"generator":{"kind":"budgets","max_budget":4},"n":7,"k":1}]}|};
          {|{"type":"bbc-campaign","seeds_per_point":0,"points":[{"generator":{"kind":"budgets","max_budget":4},"n":7,"k":1}]}|};
          {|{"type":"bbc-campaign","seeds_per_point":3,"points":[{"generator":{"kind":"nope"},"n":7,"k":1}]}|};
          {|{"type":"bbc-campaign","seeds_per_point":3,"points":[{"generator":{"kind":"catalog","name":"ring"},"n":7,"k":1}],"inits":["seeded","weird"]}|};
        ]

(* The trial runner must be Dynamics.run exactly — same walk, same
   statistics — when handed the same materialized inputs. *)
let test_trial_matches_dynamics () =
  for i = 0 to Spec.unit_count spec - 1 do
    let t = Spec.unit spec i in
    let inst, cfg =
      match Trial.build t with Ok x -> x | Error m -> Alcotest.fail m
    in
    let direct =
      Bbc.Dynamics.run ~objective:t.Trial.objective ~policy:(Trial.policy_of t)
        ~scheduler:(Trial.scheduler_of t) ~max_rounds:t.Trial.max_rounds inst cfg
    in
    let s = match Trial.run t with Ok s -> s | Error m -> Alcotest.fail m in
    let expect_outcome, (stats : Bbc.Dynamics.stats), final =
      match direct with
      | Bbc.Dynamics.Converged (c, st) -> (Trial.Converged, st, c)
      | Bbc.Dynamics.Cycled { config; period; stats } ->
          (Trial.Cycled period, stats, config)
      | Bbc.Dynamics.Exhausted (c, st) -> (Trial.Exhausted, st, c)
    in
    Alcotest.(check bool) "outcome" true (s.Trial.outcome = expect_outcome);
    Alcotest.(check int) "rounds" stats.Bbc.Dynamics.rounds s.Trial.rounds;
    Alcotest.(check int) "steps" stats.Bbc.Dynamics.steps s.Trial.steps;
    Alcotest.(check int)
      "social cost"
      (Bbc.Eval.social_cost ~objective:t.Trial.objective inst final)
      s.Trial.social_cost
  done

let test_checkpoint_roundtrip () =
  let dir = temp_dir () in
  let summary =
    {
      Trial.outcome = Trial.Converged;
      rounds = 3;
      steps = 17;
      deviations = 9;
      social_cost = 123;
      strongly_connected = true;
    }
  in
  let e0 = { Checkpoint.unit_id = 0; payload = Checkpoint.Done summary } in
  let e1 = { Checkpoint.unit_id = 1; payload = Checkpoint.Failed "boom" } in
  (match Checkpoint.entry_of_line (Checkpoint.entry_to_line e0) with
  | Ok e -> Alcotest.(check bool) "done roundtrip" true (e = e0)
  | Error m -> Alcotest.fail m);
  (match Checkpoint.entry_of_line (Checkpoint.entry_to_line e1) with
  | Ok e -> Alcotest.(check bool) "failed roundtrip" true (e = e1)
  | Error m -> Alcotest.fail m);
  ignore (Checkpoint.append_chunk ~dir ~index:0 [ e0; e1 ]);
  (* A replayed unit id in a later chunk is ignored (first wins), and a
     leftover temp file is invisible to the loader. *)
  let dup = { Checkpoint.unit_id = 0; payload = Checkpoint.Failed "replay" } in
  ignore (Checkpoint.append_chunk ~dir ~index:1 [ dup ]);
  Out_channel.with_open_bin
    (Filename.concat dir ".tmp-chunk-00000002.jsonl-999")
    (fun oc -> output_string oc "torn");
  match Checkpoint.load ~dir with
  | Error m -> Alcotest.fail m
  | Ok (tbl, next) ->
      Alcotest.(check int) "next chunk index" 2 next;
      Alcotest.(check int) "entries" 2 (Hashtbl.length tbl);
      (match Hashtbl.find_opt tbl 0 with
      | Some (Checkpoint.Done s) ->
          Alcotest.(check int) "first wins" 123 s.Trial.social_cost
      | _ -> Alcotest.fail "unit 0 missing or replaced by replay");
      (match Hashtbl.find_opt tbl 1 with
      | Some (Checkpoint.Failed m) -> Alcotest.(check string) "failure kept" "boom" m
      | _ -> Alcotest.fail "unit 1 missing")

let test_aggregate_order_independent () =
  let summaries =
    List.init 60 (fun i ->
        ( Printf.sprintf "cell-%d" (i mod 3),
          {
            Trial.outcome =
              (if i mod 7 = 0 then Trial.Cycled 2
               else if i mod 5 = 0 then Trial.Exhausted
               else Trial.Converged);
            rounds = 1 + (i * 13 mod 40);
            steps = i * 3;
            deviations = i;
            social_cost = 100 + (i * 17 mod 59);
            strongly_connected = i mod 2 = 0;
          } ))
  in
  let render entries =
    let agg = Aggregate.create () in
    List.iter (fun (label, s) -> Aggregate.add agg ~label s) entries;
    Aggregate.add_failed agg ~label:"cell-0";
    Json.to_string
      (Aggregate.report_json ~name:"t" ~units:61 ~completed:60 ~quarantined:1 agg)
  in
  let forward = render summaries in
  let backward = render (List.rev summaries) in
  let shuffled =
    let arr = Array.of_list summaries in
    let rng = Bbc_prng.Splitmix.create 9 in
    Bbc_prng.Splitmix.shuffle rng arr;
    render (Array.to_list arr)
  in
  Alcotest.(check string) "reverse order" forward backward;
  Alcotest.(check string) "shuffled order" forward shuffled

(* Crash-resume byte-identity without processes: complete run in [a];
   seed [b] with only the first chunk of [a], then resume [b] with a
   different chunk size and job count.  Reports must match bytewise. *)
let test_runner_resume_identical () =
  let a = temp_dir () and b = temp_dir () in
  let opts_a =
    { Runner.default_opts with checkpoint_every = 7; jobs = Some 2 }
  in
  let out_a =
    match Runner.run opts_a ~dir:a spec with Ok o -> o | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "all executed" 40 out_a.Runner.executed;
  Alcotest.(check int) "none quarantined" 0 out_a.Runner.quarantined;
  let copy name =
    let contents =
      In_channel.with_open_bin (Filename.concat a name) In_channel.input_all
    in
    Out_channel.with_open_bin (Filename.concat b name) (fun oc ->
        output_string oc contents)
  in
  copy "spec.json";
  copy "chunk-00000000.jsonl";
  let opts_b =
    { Runner.default_opts with checkpoint_every = 11; jobs = Some 1 }
  in
  let out_b =
    match Runner.run opts_b ~dir:b spec with Ok o -> o | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "resume skipped the seeded chunk" 7 out_b.Runner.skipped;
  let read dir = In_channel.with_open_bin (Checkpoint.report_path dir) In_channel.input_all in
  Alcotest.(check string) "byte-identical reports" (read a) (read b);
  (* Runner.report recomputes the same bytes from disk alone. *)
  (match Runner.report ~dir:b with
  | Error m -> Alcotest.fail m
  | Ok json ->
      Alcotest.(check string) "report cmd matches" (read a) (Json.to_string json ^ "\n"));
  (* A different spec is refused. *)
  match Runner.run opts_b ~dir:b { spec with seed = 43 } with
  | Ok _ -> Alcotest.fail "spec drift accepted"
  | Error m ->
      Alcotest.(check bool) "drift error mentions spec" true
        (String.length m > 0)

let suite =
  [
    Alcotest.test_case "grid expansion" `Quick test_grid_expansion;
    Alcotest.test_case "spec codec" `Quick test_spec_codec;
    Alcotest.test_case "trial matches dynamics" `Quick test_trial_matches_dynamics;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "aggregate order independence" `Quick
      test_aggregate_order_independent;
    Alcotest.test_case "runner resume byte-identity" `Quick
      test_runner_resume_identical;
  ]
