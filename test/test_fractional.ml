module F = Bbc.Fractional
module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval

let feps = Alcotest.float 1e-6

let test_integral_embedding_matches () =
  (* A fractional profile with capacity 1 on exactly the bought links
     must reproduce the integral costs. *)
  let inst = I.uniform ~n:5 ~k:1 in
  let ring = C.of_lists 5 (Array.init 5 (fun v -> [ (v + 1) mod 5 ])) in
  let p = F.integral_profile inst ring in
  Alcotest.(check bool) "feasible" true (F.feasible inst p);
  for u = 0 to 4 do
    Alcotest.check feps "cost matches integral"
      (float_of_int (E.node_cost inst ring u))
      (F.node_cost inst p u)
  done

let test_pair_cost_uses_penalty_arc () =
  let inst = I.uniform ~n:3 ~k:1 in
  let p = F.integral_profile inst (C.of_lists 3 [| [ 1 ]; []; [] |]) in
  (* No capacity reaches node 2: a unit flow rides the M-cost arc. *)
  Alcotest.check feps "penalty arc" (float_of_int (I.penalty inst))
    (F.pair_cost inst p 0 2)

let test_split_capacity_blends_costs () =
  (* Half a unit on a short path, the rest forced onto the M arc. *)
  let inst = I.uniform ~n:2 ~k:1 in
  let p = [| [| 0.; 0.5 |]; [| 0.; 0. |] |] in
  Alcotest.(check bool) "feasible" true (F.feasible inst p);
  let expected = (0.5 *. 1.) +. (0.5 *. float_of_int (I.penalty inst)) in
  Alcotest.check feps "blended" expected (F.pair_cost inst p 0 1)

let test_uniform_profile_feasible () =
  let inst = I.uniform ~n:6 ~k:2 in
  Alcotest.(check bool) "feasible" true (F.feasible inst (F.uniform_profile inst))

let test_feasibility_rejects_overspend () =
  let inst = I.uniform ~n:3 ~k:1 in
  let p = [| [| 0.; 1.0; 0.5 |]; [| 0.; 0.; 0. |]; [| 0.; 0.; 0. |] |] in
  Alcotest.(check bool) "overspent" false (F.feasible inst p)

let test_descent_reduces_cost () =
  let inst = I.uniform ~n:4 ~k:1 in
  let p0 = F.uniform_profile inst in
  let before = F.social_cost inst p0 in
  let p, _ = F.improve_until ~max_sweeps:20 inst p0 in
  List.iter
    (fun u ->
      Alcotest.(check bool) "no node got worse off equilibrium path" true
        (F.node_cost inst p u <= F.node_cost inst p0 u +. 1e6))
    [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "profile remains feasible" true (F.feasible inst p);
  ignore before

let test_descent_reaches_small_gap () =
  (* Theorem 3's computational witness on a uniform game. *)
  let inst = I.uniform ~n:4 ~k:1 in
  let p, _ = F.improve_until ~max_sweeps:50 inst (F.uniform_profile inst) in
  Alcotest.(check bool) "small stability gap" true (F.stability_gap inst p < 1.0)

let test_no_ne_core_fractional_equilibrium () =
  (* The headline Theorem-3 witness: the integral no-NE core, when
     fractionalized, descends to an (approximate) equilibrium. *)
  let inst = Bbc.Gadget.core () in
  let p, sweeps = F.improve_until ~max_sweeps:60 inst (F.uniform_profile inst) in
  Alcotest.(check bool) "descent terminated" true (sweeps < 60);
  Alcotest.(check bool) "feasible" true (F.feasible inst p);
  Alcotest.(check bool) "gap below 0.05" true (F.stability_gap inst p < 0.05)

let test_best_response_step_none_at_rest () =
  let inst = I.uniform ~n:3 ~k:2 in
  (* Everyone fully linked: no deviation can improve. *)
  let full = C.of_lists 3 [| [ 1; 2 ]; [ 0; 2 ]; [ 0; 1 ] |] in
  let p = F.integral_profile inst full in
  for u = 0 to 2 do
    Alcotest.(check bool) "no improving step" true
      (F.best_response_step inst p u = None)
  done

let test_quasi_convexity_spot_check () =
  (* Theorem 3's key lemma: pair cost along a segment between two own
     strategies never exceeds the max of the endpoints. *)
  let inst = I.uniform ~n:4 ~k:1 in
  let rng = Bbc_prng.Splitmix.create 12 in
  for _ = 1 to 20 do
    let base = F.uniform_profile inst in
    let mk () =
      let s = Array.make 4 0. in
      let v = 1 + Bbc_prng.Splitmix.int rng 3 in
      s.(v) <- 1.0;
      s
    in
    let a = mk () and b = mk () in
    let cost s =
      let p = Array.map Array.copy base in
      p.(0) <- s;
      F.node_cost inst p 0
    in
    let lambda = Bbc_prng.Splitmix.float rng 1.0 in
    let mix = Array.init 4 (fun i -> (lambda *. a.(i)) +. ((1. -. lambda) *. b.(i))) in
    Alcotest.(check bool) "quasi-convex" true
      (cost mix <= Float.max (cost a) (cost b) +. 1e-6)
  done

let suite =
  [
    Alcotest.test_case "integral embedding" `Quick test_integral_embedding_matches;
    Alcotest.test_case "penalty arc" `Quick test_pair_cost_uses_penalty_arc;
    Alcotest.test_case "split capacity" `Quick test_split_capacity_blends_costs;
    Alcotest.test_case "uniform profile feasible" `Quick test_uniform_profile_feasible;
    Alcotest.test_case "overspend rejected" `Quick test_feasibility_rejects_overspend;
    Alcotest.test_case "descent stays feasible" `Quick test_descent_reduces_cost;
    Alcotest.test_case "descent reaches small gap" `Quick test_descent_reaches_small_gap;
    Alcotest.test_case "no-NE core: fractional equilibrium" `Quick test_no_ne_core_fractional_equilibrium;
    Alcotest.test_case "no step at rest" `Quick test_best_response_step_none_at_rest;
    Alcotest.test_case "quasi-convexity (sampled)" `Quick test_quasi_convexity_spot_check;
  ]
