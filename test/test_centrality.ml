module C = Bbc_graph.Centrality
module D = Bbc_graph.Digraph
module G = Bbc_graph.Generators

let feps = Alcotest.float 1e-9

let test_path_betweenness () =
  (* 0 -> 1 -> 2 -> 3: node 1 carries pairs (0,2), (0,3); node 2 carries
     (0,3), (1,3). *)
  let g = G.directed_path 4 in
  let b = C.betweenness g in
  Alcotest.check feps "endpoint" 0.0 b.(0);
  Alcotest.check feps "node 1" 2.0 b.(1);
  Alcotest.check feps "node 2" 2.0 b.(2);
  Alcotest.check feps "endpoint" 0.0 b.(3)

let test_ring_symmetric () =
  let g = G.directed_ring 6 in
  let b = C.betweenness g in
  for v = 1 to 5 do
    Alcotest.check feps "vertex-transitive" b.(0) b.(v)
  done;
  Alcotest.(check bool) "positive" true (b.(0) > 0.0)

let test_star_hub () =
  (* Everyone links 0 and 0 links 1: 0 carries most pairs. *)
  let g = D.of_unit_edges 5 [ (1, 0); (2, 0); (3, 0); (4, 0); (0, 1) ] in
  let b = C.betweenness g in
  for v = 2 to 4 do
    Alcotest.(check bool) "hub dominates leaves" true (b.(0) > b.(v))
  done

let test_split_shortest_paths () =
  (* Two equal-length paths 0->1->3 and 0->2->3: nodes 1 and 2 each get
     half of the (0,3) pair. *)
  let g = D.of_unit_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let b = C.betweenness g in
  Alcotest.check feps "half each (1)" 0.5 b.(1);
  Alcotest.check feps "half each (2)" 0.5 b.(2)

let test_complete_zero () =
  (* All pairs adjacent: nothing transits anyone. *)
  let g = G.complete 5 in
  Array.iter (fun x -> Alcotest.check feps "zero" 0.0 x) (C.betweenness g)

let test_in_degrees () =
  let g = D.of_unit_edges 4 [ (0, 1); (2, 1); (3, 1); (1, 0) ] in
  Alcotest.(check (array int)) "in degrees" [| 1; 3; 0; 0 |] (C.in_degrees g)

let test_gini () =
  Alcotest.check feps "uniform" 0.0 (C.gini [| 3; 3; 3; 3 |]);
  Alcotest.check feps "empty" 0.0 (C.gini [||]);
  Alcotest.check feps "all zero" 0.0 (C.gini [| 0; 0 |]);
  (* One node holds everything: G = (n-1)/n. *)
  Alcotest.check feps "concentrated" 0.75 (C.gini [| 0; 0; 0; 12 |]);
  Alcotest.(check bool) "monotone under spreading" true
    (C.gini [| 0; 0; 6; 6 |] < C.gini [| 0; 0; 0; 12 |])

let suite =
  [
    Alcotest.test_case "path betweenness" `Quick test_path_betweenness;
    Alcotest.test_case "ring symmetric" `Quick test_ring_symmetric;
    Alcotest.test_case "star hub" `Quick test_star_hub;
    Alcotest.test_case "split shortest paths" `Quick test_split_shortest_paths;
    Alcotest.test_case "complete graph zero" `Quick test_complete_zero;
    Alcotest.test_case "in degrees" `Quick test_in_degrees;
    Alcotest.test_case "gini" `Quick test_gini;
  ]
