(* Property-based tests (qcheck, registered through QCheck_alcotest).

   Random structures come from the bbc_fuzz structured generators: each
   qcheck value is a whole shrink tree, and the shrink function walks
   its children, so a failure shrinks to a minimal instance/graph
   instead of an opaque seed.  (A couple of properties over external
   domains — the SAT solver — keep the historical seed arbitrary.) *)

module Q = QCheck
module SM = Bbc_prng.Splitmix
module D = Bbc_graph.Digraph
module P = Bbc_graph.Paths
module G = Bbc_graph.Generators
module Scc = Bbc_graph.Scc
module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval
module F = Bbc_fuzz.Gen
module DG = Bbc_fuzz.Domain_gen

(* Bridge: a bbc_fuzz generator as a qcheck arbitrary over shrink
   trees.  qcheck draws a seed, the tree is regenerated deterministically
   from it, and qcheck's shrinker explores the tree's children. *)
let fuzz_arb ?print g =
  let print = Option.map (fun p t -> p (F.root t)) print in
  Q.make ?print
    ~shrink:(fun t yield -> Seq.iter yield (F.children t))
    (Q.Gen.map (fun seed -> F.generate ~seed g) (Q.Gen.int_bound 1_000_000))

let on_root prop t = prop (F.root t)

let print_ic (inst, cfg) =
  Bbc.Codec.instance_to_string inst ^ Bbc.Codec.config_to_string cfg

let print_graph g =
  Printf.sprintf "n=%d edges=[%s]" (D.n g)
    (String.concat ";"
       (List.map (fun (u, v, _) -> Printf.sprintf "%d->%d" u v) (D.edges g)))

let seed_arb = Q.int_bound 1_000_000

(* ---------------------------------------------------------------- *)
(* Graph-layer properties.                                            *)

let graph_arb = fuzz_arb ~print:print_graph (DG.graph ~max_n:15 ())

let graph_src_arb =
  let open F in
  let gen =
    let* g = DG.graph ~max_n:25 () in
    let+ src = int_bound (D.n g - 1) in
    (g, src)
  in
  fuzz_arb ~print:(fun (g, src) -> Printf.sprintf "src=%d %s" src (print_graph g)) gen

let prop_bfs_equals_dijkstra =
  Q.Test.make ~count:100 ~name:"bfs = dijkstra on unit graphs" graph_src_arb
    (on_root (fun (g, src) -> P.bfs g src = P.dijkstra g src))

let prop_triangle_inequality =
  Q.Test.make ~count:60 ~name:"shortest paths satisfy the triangle inequality"
    graph_arb
    (on_root (fun g ->
         let n = D.n g in
         let dist = Array.init n (fun v -> P.shortest g v) in
         let ok = ref true in
         for u = 0 to n - 1 do
           for v = 0 to n - 1 do
             for w = 0 to n - 1 do
               if
                 dist.(u).(v) <> P.unreachable
                 && dist.(v).(w) <> P.unreachable
                 && (dist.(u).(w) = P.unreachable
                    || dist.(u).(w) > dist.(u).(v) + dist.(v).(w))
               then ok := false
             done
           done
         done;
         !ok))

let mutually_reachable g u v =
  (Bbc_graph.Traversal.reachable_set g u).(v)
  && (Bbc_graph.Traversal.reachable_set g v).(u)

let prop_scc_is_mutual_reachability =
  Q.Test.make ~count:40 ~name:"same SCC <-> mutually reachable" graph_arb
    (on_root (fun g ->
         let n = D.n g in
         let scc = Scc.compute g in
         let ok = ref true in
         for u = 0 to n - 1 do
           for v = 0 to n - 1 do
             let same = scc.component.(u) = scc.component.(v) in
             if same <> mutually_reachable g u v then ok := false
           done
         done;
         !ok))

let prop_betweenness_nonnegative_bounded =
  Q.Test.make ~count:30 ~name:"betweenness in [0, (n-1)(n-2)]" graph_arb
    (on_root (fun g ->
         let n = D.n g in
         let b = Bbc_graph.Centrality.betweenness g in
         Array.for_all
           (fun x -> x >= 0.0 && x <= float_of_int ((n - 1) * (n - 2)))
           b))

(* ---------------------------------------------------------------- *)
(* Game-layer properties over generated (instance, config) pairs.     *)

let ic_arb = fuzz_arb ~print:print_ic (DG.instance_config ())

let icu_arb =
  let open F in
  let gen =
    let* inst, cfg = DG.instance_config () in
    let+ u = DG.node_of inst in
    (inst, cfg, u)
  in
  fuzz_arb
    ~print:(fun (inst, cfg, u) -> Printf.sprintf "u=%d %s" u (print_ic (inst, cfg)))
    gen

let prop_config_graph_roundtrip =
  Q.Test.make ~count:80 ~name:"config -> graph -> config roundtrip" ic_arb
    (on_root (fun (inst, cfg) -> C.equal cfg (C.of_graph (C.to_graph inst cfg))))

let prop_adding_link_never_hurts_owner =
  Q.Test.make ~count:60 ~name:"buying an extra link never raises own cost"
    icu_arb
    (on_root (fun (inst, cfg, u) ->
         let n = I.n inst in
         let current = C.targets cfg u in
         let extra =
           List.filter
             (fun v -> v <> u && not (List.mem v current))
             (List.init n Fun.id)
         in
         match extra with
         | [] -> true
         | v :: _ ->
             let c' = C.with_strategy cfg u (v :: current) in
             E.node_cost inst c' u <= E.node_cost inst cfg u))

let prop_best_response_is_lower_bound =
  let open F in
  let gen =
    let* inst, cfg = DG.instance_config () in
    let* u = DG.node_of inst in
    let+ trial = DG.strategy_for inst u in
    (inst, cfg, u, trial)
  in
  Q.Test.make ~count:60 ~name:"exact best response <= any strategy's cost"
    (fuzz_arb ~print:(fun (inst, cfg, u, _) ->
         Printf.sprintf "u=%d %s" u (print_ic (inst, cfg)))
       gen)
    (on_root (fun (inst, cfg, u, trial) ->
         let best = (Bbc.Best_response.exact inst cfg u).cost in
         best <= E.node_cost inst (C.with_strategy cfg u trial) u
         && best <= E.node_cost inst cfg u))

(* Uniform k = 1 games: the regime of the original reach argument (the
   disconnection penalty dominates any finite-distance saving). *)
let uniform1_arb =
  let open F in
  let gen =
    let* n = int_range 2 10 in
    let inst = I.uniform ~n ~k:1 in
    let* cfg = DG.config_for inst in
    let+ u = int_bound (n - 1) in
    (inst, cfg, u)
  in
  fuzz_arb
    ~print:(fun (inst, cfg, u) -> Printf.sprintf "u=%d %s" u (print_ic (inst, cfg)))
    gen

let prop_mover_reach_never_decreases =
  Q.Test.make ~count:50 ~name:"a best-response step never lowers the mover's reach"
    uniform1_arb
    (on_root (fun (inst, cfg, u) ->
         let before = Bbc_graph.Traversal.reach (C.to_graph inst cfg) u in
         match Bbc.Best_response.improving inst cfg u with
         | None -> true
         | Some _ ->
             let best = Bbc.Best_response.exact inst cfg u in
             let c' = C.with_strategy cfg u best.strategy in
             Bbc_graph.Traversal.reach (C.to_graph inst c') u >= before))

let prop_flow_cost_equals_shortest_path =
  let open F in
  let gen =
    let* n = int_range 4 10 in
    let* k = int_range 1 3 in
    let inst = I.uniform ~n ~k:(min k (n - 1)) in
    let* cfg = DG.config_for inst in
    let* u = int_bound (n - 1) in
    let+ v = int_bound (n - 1) in
    (inst, cfg, u, v)
  in
  Q.Test.make ~count:40
    ~name:"unit-capacity min-cost flow = shortest path (with penalty)"
    (fuzz_arb ~print:(fun (inst, cfg, _, _) -> print_ic (inst, cfg)) gen)
    (on_root (fun (inst, cfg, u, v) ->
         if u = v then true
         else begin
           let p = Bbc.Fractional.integral_profile inst cfg in
           let g = C.to_graph inst cfg in
           let d = (P.shortest g u).(v) in
           let expected =
             if d = P.unreachable then float_of_int (I.penalty inst)
             else float_of_int (min d (I.penalty inst))
           in
           Float.abs (Bbc.Fractional.pair_cost inst p u v -. expected) < 1e-6
         end))

let prop_willows_budgets_and_connectivity =
  Q.Test.make ~count:20 ~name:"willows: full budgets, strong connectivity"
    (Q.triple (Q.int_range 2 3) (Q.int_range 1 3) (Q.int_range 0 2))
    (fun (k, h, l) ->
      let p = Bbc.Willows.{ k; h; l } in
      if Bbc.Willows.size p > 130 then true
      else begin
        let inst, config = Bbc.Willows.build p in
        C.feasible inst config
        && Scc.is_strongly_connected (C.to_graph inst config)
        && Array.for_all
             (fun v -> C.strategy_size config v = k)
             (Array.init (Bbc.Willows.size p) Fun.id)
      end)

let prop_solver_witness_satisfies =
  Q.Test.make ~count:60 ~name:"DPLL witnesses satisfy their formulas" seed_arb
    (fun seed ->
      let rng = SM.create seed in
      let f = Bbc_sat.Gen.random_3sat rng ~num_vars:7 ~num_clauses:20 in
      match Bbc_sat.Solver.solve f with
      | Sat w -> Bbc_sat.Cnf.eval f w
      | Unsat -> Bbc_sat.Solver.count_models f = 0)

let prop_group_axioms =
  let open F in
  let gen =
    let* m0 = int_range 2 5 in
    let* rest = list ~max_len:2 (int_range 2 5) in
    let module A = Bbc_group.Abelian in
    let g = A.create (m0 :: rest) in
    let* x = int_bound (A.order g - 1) in
    let+ y = int_bound (A.order g - 1) in
    (m0 :: rest, x, y)
  in
  Q.Test.make ~count:80 ~name:"abelian group axioms" (fuzz_arb gen)
    (on_root (fun (moduli, x, y) ->
         let module A = Bbc_group.Abelian in
         let g = A.create moduli in
         A.add g x y = A.add g y x
         && A.add g x (A.neg g x) = A.identity g
         && A.add g x (A.identity g) = x))

let prop_social_cost_decomposes =
  Q.Test.make ~count:40 ~name:"social cost = sum of node costs" ic_arb
    (on_root (fun (inst, cfg) ->
         E.social_cost inst cfg = Array.fold_left ( + ) 0 (E.all_costs inst cfg)))

let prop_max_cost_le_sum_cost =
  Q.Test.make ~count:40 ~name:"max objective <= sum objective per node" ic_arb
    (on_root (fun (inst, cfg) ->
         let ok = ref true in
         for u = 0 to I.n inst - 1 do
           if E.node_cost ~objective:Max inst cfg u > E.node_cost inst cfg u then
             ok := false
         done;
         !ok))

let prop_dynamics_deviations_strictly_improve =
  Q.Test.make ~count:25 ~name:"every dynamics move strictly improves the mover"
    (fuzz_arb ~print:print_ic (DG.instance_config ~max_n:8 ()))
    (on_root (fun (inst, c0) ->
         let ok = ref true in
         let current = ref c0 in
         ignore
           (Bbc.Dynamics.run
              ~on_step:(fun s ->
                if s.moved then begin
                  let before = E.node_cost inst !current s.node in
                  current := C.with_strategy !current s.node s.strategy;
                  let after = E.node_cost inst !current s.node in
                  if after >= before then ok := false
                end)
              ~scheduler:Round_robin ~max_rounds:30 inst c0);
         !ok))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bfs_equals_dijkstra;
      prop_triangle_inequality;
      prop_scc_is_mutual_reachability;
      prop_config_graph_roundtrip;
      prop_adding_link_never_hurts_owner;
      prop_best_response_is_lower_bound;
      prop_mover_reach_never_decreases;
      prop_flow_cost_equals_shortest_path;
      prop_willows_budgets_and_connectivity;
      prop_solver_witness_satisfies;
      prop_group_axioms;
      prop_social_cost_decomposes;
      prop_max_cost_le_sum_cost;
      prop_dynamics_deviations_strictly_improve;
    ]

let prop_codec_roundtrip =
  Q.Test.make ~count:40 ~name:"codec: instance and config roundtrip" ic_arb
    (on_root (fun (inst, cfg) ->
         let n = I.n inst in
         let nodes = List.init n Fun.id in
         let inst_ok =
           match
             Bbc.Codec.instance_of_string (Bbc.Codec.instance_to_string inst)
           with
           | Ok inst' ->
               I.penalty inst = I.penalty inst'
               && List.for_all
                    (fun u ->
                      I.budget inst u = I.budget inst' u
                      && List.for_all
                           (fun v ->
                             u = v
                             || I.weight inst u v = I.weight inst' u v
                                && I.cost inst u v = I.cost inst' u v
                                && I.length inst u v = I.length inst' u v)
                           nodes)
                    nodes
           | Error _ -> false
         in
         let config_ok =
           match Bbc.Codec.config_of_string (Bbc.Codec.config_to_string cfg) with
           | Ok c' -> C.equal cfg c'
           | Error _ -> false
         in
         inst_ok && config_ok))

let prop_stability_gap_zero_iff_stable =
  Q.Test.make ~count:40 ~name:"stability gap = 0 <-> stable"
    (fuzz_arb ~print:print_ic (DG.instance_config ~max_n:7 ()))
    (on_root (fun (inst, cfg) ->
         Bbc.Stability.is_stable inst cfg
         = (Bbc.Stability.stability_gap inst cfg = 0)))

let prop_budget_instances_feasible_dynamics =
  Q.Test.make ~count:20 ~name:"dynamics keeps profiles feasible"
    (fuzz_arb
       ~print:(fun inst -> Bbc.Codec.instance_to_string inst)
       (DG.instance ~max_n:8 ()))
    (on_root (fun inst ->
         let outcome =
           Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:40
             inst
             (C.empty (I.n inst))
         in
         C.feasible inst (Bbc.Dynamics.final_config outcome)))

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_codec_roundtrip;
        prop_stability_gap_zero_iff_stable;
        prop_budget_instances_feasible_dynamics;
        prop_betweenness_nonnegative_bounded;
      ]
