(* Property-based tests (qcheck, registered through QCheck_alcotest).
   Random structures are derived from a generated seed through the
   library's own deterministic generators, so failures reproduce. *)

module Q = QCheck
module SM = Bbc_prng.Splitmix
module D = Bbc_graph.Digraph
module P = Bbc_graph.Paths
module G = Bbc_graph.Generators
module Scc = Bbc_graph.Scc
module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval

let seed_arb = Q.int_bound 1_000_000

let random_graph seed ~n ~k = G.random_k_out (SM.create seed) ~n ~k

let prop_bfs_equals_dijkstra =
  Q.Test.make ~count:100 ~name:"bfs = dijkstra on unit graphs" seed_arb (fun seed ->
      let g = random_graph seed ~n:25 ~k:2 in
      let src = seed mod 25 in
      P.bfs g src = P.dijkstra g src)

let prop_triangle_inequality =
  Q.Test.make ~count:60 ~name:"shortest paths satisfy the triangle inequality"
    seed_arb (fun seed ->
      let g = random_graph seed ~n:15 ~k:2 in
      let dist = Array.init 15 (fun v -> P.shortest g v) in
      let ok = ref true in
      for u = 0 to 14 do
        for v = 0 to 14 do
          for w = 0 to 14 do
            if
              dist.(u).(v) <> P.unreachable
              && dist.(v).(w) <> P.unreachable
              && (dist.(u).(w) = P.unreachable
                 || dist.(u).(w) > dist.(u).(v) + dist.(v).(w))
            then ok := false
          done
        done
      done;
      !ok)

let mutually_reachable g u v =
  (Bbc_graph.Traversal.reachable_set g u).(v)
  && (Bbc_graph.Traversal.reachable_set g v).(u)

let prop_scc_is_mutual_reachability =
  Q.Test.make ~count:40 ~name:"same SCC <-> mutually reachable" seed_arb
    (fun seed ->
      let g = G.gnp (SM.create seed) ~n:12 ~p:0.12 in
      let scc = Scc.compute g in
      let ok = ref true in
      for u = 0 to 11 do
        for v = 0 to 11 do
          let same = scc.component.(u) = scc.component.(v) in
          if same <> mutually_reachable g u v then ok := false
        done
      done;
      !ok)

let prop_config_graph_roundtrip =
  Q.Test.make ~count:80 ~name:"config -> graph -> config roundtrip" seed_arb
    (fun seed ->
      let n = 12 and k = 3 in
      let inst = I.uniform ~n ~k in
      let c = C.of_graph (random_graph seed ~n ~k) in
      C.equal c (C.of_graph (C.to_graph inst c)))

let prop_adding_link_never_hurts_owner =
  Q.Test.make ~count:60 ~name:"buying an extra link never raises own cost"
    seed_arb (fun seed ->
      let n = 10 in
      let inst = I.uniform ~n ~k:3 in
      let rng = SM.create seed in
      let c = C.of_graph (G.random_k_out rng ~n ~k:2) in
      let u = SM.int rng n in
      let current = C.targets c u in
      let extra =
        List.filter (fun v -> v <> u && not (List.mem v current)) (List.init n Fun.id)
      in
      match extra with
      | [] -> true
      | v :: _ ->
          let c' = C.with_strategy c u (v :: current) in
          E.node_cost inst c' u <= E.node_cost inst c u)

let prop_best_response_is_lower_bound =
  Q.Test.make ~count:60 ~name:"exact best response <= any strategy's cost"
    seed_arb (fun seed ->
      let n = 9 in
      let inst = I.uniform ~n ~k:2 in
      let rng = SM.create seed in
      let c = C.of_graph (G.random_k_out rng ~n ~k:2) in
      let u = SM.int rng n in
      let best = (Bbc.Best_response.exact inst c u).cost in
      (* Compare against a random feasible strategy. *)
      let trial =
        SM.sample_without_replacement rng 2 (n - 1)
        |> List.map (fun t -> if t >= u then t + 1 else t)
      in
      best <= E.node_cost inst (C.with_strategy c u trial) u
      && best <= E.node_cost inst c u)

let prop_mover_reach_never_decreases =
  Q.Test.make ~count:50 ~name:"a best-response step never lowers the mover's reach"
    seed_arb (fun seed ->
      let n = 10 in
      let inst = I.uniform ~n ~k:1 in
      let rng = SM.create seed in
      let c = C.of_graph (G.random_k_out rng ~n ~k:1) in
      let u = SM.int rng n in
      let before = Bbc_graph.Traversal.reach (C.to_graph inst c) u in
      match Bbc.Best_response.improving inst c u with
      | None -> true
      | Some _ ->
          let best = Bbc.Best_response.exact inst c u in
          let c' = C.with_strategy c u best.strategy in
          Bbc_graph.Traversal.reach (C.to_graph inst c') u >= before)

let prop_flow_cost_equals_shortest_path =
  Q.Test.make ~count:40
    ~name:"unit-capacity min-cost flow = shortest path (with penalty)" seed_arb
    (fun seed ->
      let n = 8 in
      let inst = I.uniform ~n ~k:2 in
      let c = C.of_graph (random_graph seed ~n ~k:2) in
      let p = Bbc.Fractional.integral_profile inst c in
      let g = C.to_graph inst c in
      let rng = SM.create (seed + 1) in
      let u = SM.int rng n in
      let v = (u + 1 + SM.int rng (n - 1)) mod n in
      if u = v then true
      else begin
        let d = (P.shortest g u).(v) in
        let expected =
          if d = P.unreachable then float_of_int (I.penalty inst)
          else float_of_int (min d (I.penalty inst))
        in
        Float.abs (Bbc.Fractional.pair_cost inst p u v -. expected) < 1e-6
      end)

let prop_willows_budgets_and_connectivity =
  Q.Test.make ~count:20 ~name:"willows: full budgets, strong connectivity"
    (Q.triple (Q.int_range 2 3) (Q.int_range 1 3) (Q.int_range 0 2))
    (fun (k, h, l) ->
      let p = Bbc.Willows.{ k; h; l } in
      if Bbc.Willows.size p > 130 then true
      else begin
        let inst, config = Bbc.Willows.build p in
        C.feasible inst config
        && Scc.is_strongly_connected (C.to_graph inst config)
        && Array.for_all
             (fun v -> C.strategy_size config v = k)
             (Array.init (Bbc.Willows.size p) Fun.id)
      end)

let prop_solver_witness_satisfies =
  Q.Test.make ~count:60 ~name:"DPLL witnesses satisfy their formulas" seed_arb
    (fun seed ->
      let rng = SM.create seed in
      let f = Bbc_sat.Gen.random_3sat rng ~num_vars:7 ~num_clauses:20 in
      match Bbc_sat.Solver.solve f with
      | Sat w -> Bbc_sat.Cnf.eval f w
      | Unsat -> Bbc_sat.Solver.count_models f = 0)

let prop_group_axioms =
  Q.Test.make ~count:80 ~name:"abelian group axioms"
    (Q.pair seed_arb (Q.list_of_size (Q.Gen.int_range 1 3) (Q.int_range 2 5)))
    (fun (seed, moduli) ->
      let module A = Bbc_group.Abelian in
      let g = A.create moduli in
      let rng = SM.create seed in
      let x = SM.int rng (A.order g) and y = SM.int rng (A.order g) in
      A.add g x y = A.add g y x
      && A.add g x (A.neg g x) = A.identity g
      && A.add g x (A.identity g) = x)

let prop_social_cost_decomposes =
  Q.Test.make ~count:40 ~name:"social cost = sum of node costs" seed_arb
    (fun seed ->
      let n = 10 in
      let inst = I.uniform ~n ~k:2 in
      let c = C.of_graph (random_graph seed ~n ~k:2) in
      E.social_cost inst c = Array.fold_left ( + ) 0 (E.all_costs inst c))

let prop_max_cost_le_sum_cost =
  Q.Test.make ~count:40 ~name:"max objective <= sum objective per node" seed_arb
    (fun seed ->
      let n = 10 in
      let inst = I.uniform ~n ~k:2 in
      let c = C.of_graph (random_graph seed ~n ~k:2) in
      let ok = ref true in
      for u = 0 to n - 1 do
        if E.node_cost ~objective:Max inst c u > E.node_cost inst c u then ok := false
      done;
      !ok)

let prop_dynamics_deviations_strictly_improve =
  Q.Test.make ~count:25 ~name:"every dynamics move strictly improves the mover"
    seed_arb (fun seed ->
      let n = 8 in
      let inst = I.uniform ~n ~k:1 in
      let c0 = C.of_graph (random_graph seed ~n ~k:1) in
      let ok = ref true in
      let current = ref c0 in
      ignore
        (Bbc.Dynamics.run
           ~on_step:(fun s ->
             if s.moved then begin
               let before = E.node_cost inst !current s.node in
               current := C.with_strategy !current s.node s.strategy;
               let after = E.node_cost inst !current s.node in
               if after >= before then ok := false
             end)
           ~scheduler:Round_robin ~max_rounds:30 inst c0);
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bfs_equals_dijkstra;
      prop_triangle_inequality;
      prop_scc_is_mutual_reachability;
      prop_config_graph_roundtrip;
      prop_adding_link_never_hurts_owner;
      prop_best_response_is_lower_bound;
      prop_mover_reach_never_decreases;
      prop_flow_cost_equals_shortest_path;
      prop_willows_budgets_and_connectivity;
      prop_solver_witness_satisfies;
      prop_group_axioms;
      prop_social_cost_decomposes;
      prop_max_cost_le_sum_cost;
      prop_dynamics_deviations_strictly_improve;
    ]

let prop_codec_roundtrip =
  Q.Test.make ~count:40 ~name:"codec: instance and config roundtrip" seed_arb
    (fun seed ->
      let rng = SM.create seed in
      let inst = Bbc.Gen_instance.sparse_weights rng ~n:7 ~k:2 () in
      let config = C.of_graph (G.random_k_out rng ~n:7 ~k:2) in
      let inst_ok =
        match Bbc.Codec.instance_of_string (Bbc.Codec.instance_to_string inst) with
        | Ok inst' ->
            List.for_all
              (fun u ->
                List.for_all
                  (fun v -> u = v || I.weight inst u v = I.weight inst' u v)
                  (List.init 7 Fun.id))
              (List.init 7 Fun.id)
        | Error _ -> false
      in
      let config_ok =
        match Bbc.Codec.config_of_string (Bbc.Codec.config_to_string config) with
        | Ok c' -> C.equal config c'
        | Error _ -> false
      in
      inst_ok && config_ok)

let prop_stability_gap_zero_iff_stable =
  Q.Test.make ~count:40 ~name:"stability gap = 0 <-> stable" seed_arb (fun seed ->
      let n = 8 in
      let inst = I.uniform ~n ~k:1 in
      let c = C.of_graph (random_graph seed ~n ~k:1) in
      Bbc.Stability.is_stable inst c = (Bbc.Stability.stability_gap inst c = 0))

let prop_budget_instances_feasible_dynamics =
  Q.Test.make ~count:20 ~name:"dynamics keeps profiles feasible" seed_arb
    (fun seed ->
      let rng = SM.create seed in
      let inst = Bbc.Gen_instance.random_budgets rng ~n:8 ~max_budget:3 in
      let outcome =
        Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:40 inst
          (C.empty 8)
      in
      C.feasible inst (Bbc.Dynamics.final_config outcome))

let prop_betweenness_nonnegative_bounded =
  Q.Test.make ~count:30 ~name:"betweenness in [0, (n-1)(n-2)]" seed_arb
    (fun seed ->
      let n = 12 in
      let g = random_graph seed ~n ~k:2 in
      let b = Bbc_graph.Centrality.betweenness g in
      Array.for_all
        (fun x -> x >= 0.0 && x <= float_of_int ((n - 1) * (n - 2)))
        b)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_codec_roundtrip;
        prop_stability_gap_zero_iff_stable;
        prop_budget_instances_feasible_dynamics;
        prop_betweenness_nonnegative_bounded;
      ]
