(* Session-id sharding (lib/server/shard.ml): the front tier routes a
   session to worker [of_session id mod workers] forever, so the hash
   must be a pure function of the id — identical across calls, runs,
   and processes (which rules out the seed-randomized Hashtbl.hash) —
   and spread ids evenly so no worker becomes the hot shard. *)

module Shard = Bbc_server.Shard

let test_known_values () =
  (* FNV-1a(64) values computed independently; a change here means the
     hash function changed, which would re-route every live session on
     the next deploy. *)
  Alcotest.(check int) "s0 % 4" 2 (Shard.of_session ~workers:4 "s0");
  Alcotest.(check int) "s1 % 4" 1 (Shard.of_session ~workers:4 "s1");
  Alcotest.(check int) "s2 % 4" 0 (Shard.of_session ~workers:4 "s2");
  Alcotest.(check int) "alpha % 4" 3 (Shard.of_session ~workers:4 "alpha");
  Alcotest.(check int) "\"\" % 4" 1 (Shard.of_session ~workers:4 "");
  Alcotest.(check int) "s0 % 7" 6 (Shard.of_session ~workers:7 "s0");
  Alcotest.(check int) "s1 % 7" 2 (Shard.of_session ~workers:7 "s1")

let test_stable_across_calls () =
  for i = 0 to 999 do
    let id = Shard.mint i in
    let a = Shard.of_session ~workers:5 id in
    let b = Shard.of_session ~workers:5 id in
    Alcotest.(check int) (Printf.sprintf "repeat %s" id) a b
  done

let test_range () =
  List.iter
    (fun workers ->
      for i = 0 to 999 do
        let s = Shard.of_session ~workers (Shard.mint i) in
        if s < 0 || s >= workers then
          Alcotest.failf "of_session ~workers:%d %S = %d out of range" workers
            (Shard.mint i) s
      done)
    [ 1; 2; 3; 4; 8; 16 ]

let test_single_worker () =
  for i = 0 to 99 do
    Alcotest.(check int) "one worker" 0 (Shard.of_session ~workers:1 (Shard.mint i))
  done

(* 1000 minted ids over 4 workers: expectation 250 per bucket.  The
   front mints ids exactly like this ("s0", "s1", ...), so this is the
   production key distribution, not a synthetic one.  A lopsided hash
   would concentrate load on one worker process. *)
let test_uniform () =
  let workers = 4 in
  let counts = Array.make workers 0 in
  for i = 0 to 999 do
    let s = Shard.of_session ~workers (Shard.mint i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun w c ->
      if c < 150 || c > 350 then
        Alcotest.failf "worker %d got %d of 1000 ids (expected ~250)" w c)
    counts

let test_mint () =
  Alcotest.(check string) "mint 0" "s0" (Shard.mint 0);
  Alcotest.(check string) "mint 123" "s123" (Shard.mint 123)

let test_invalid_workers () =
  Alcotest.check_raises "workers=0"
    (Invalid_argument "Shard.of_session: workers must be >= 1") (fun () ->
      ignore (Shard.of_session ~workers:0 "s0"))

let suite =
  [
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "stable across calls" `Quick test_stable_across_calls;
    Alcotest.test_case "in range" `Quick test_range;
    Alcotest.test_case "single worker" `Quick test_single_worker;
    Alcotest.test_case "uniform over 1k minted ids" `Quick test_uniform;
    Alcotest.test_case "mint format" `Quick test_mint;
    Alcotest.test_case "invalid workers" `Quick test_invalid_workers;
  ]
