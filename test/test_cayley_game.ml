module CG = Bbc.Cayley_game
module Cayley = Bbc_group.Cayley
module I = Bbc.Instance
module C = Bbc.Config

let test_to_game_shape () =
  let c = Cayley.circulant ~n:9 ~offsets:[ 1; 4 ] in
  let inst, config = CG.to_game c in
  Alcotest.(check int) "n" 9 (I.n inst);
  Alcotest.(check (option int)) "k" (Some 2) (I.uniform_k inst);
  Alcotest.(check bool) "feasible" true (C.feasible inst config);
  Alcotest.(check (list int)) "node 3's offsets" [ 4; 7 ] (C.targets config 3)

let test_directed_cycle_stable () =
  (* k=1: the directed cycle is stable (explicitly noted in the paper). *)
  let c = Cayley.circulant ~n:10 ~offsets:[ 1 ] in
  Alcotest.(check bool) "stable" true (CG.is_stable c);
  Alcotest.(check bool) "no theorem-5 deviation" false (CG.unstable_by_theorem5 c)

let test_circulant_unstable () =
  (* A k=2 circulant on a large enough ring falls to Theorem 5. *)
  let c = Cayley.circulant ~n:24 ~offsets:[ 1; 5 ] in
  Alcotest.(check bool) "theorem-5 deviation improves" true (CG.unstable_by_theorem5 c);
  Alcotest.(check bool) "not stable" false (CG.is_stable c)

let test_theorem5_deviation_is_real () =
  (* The reported deviation costs must match a direct evaluation. *)
  let c = Cayley.circulant ~n:24 ~offsets:[ 1; 5 ] in
  let inst, config = CG.to_game c in
  List.iter
    (fun (d : CG.deviation) ->
      Alcotest.(check int) "old cost" (Bbc.Eval.node_cost inst config 0) d.old_cost;
      let a = d.generator in
      let aa = Bbc_group.Abelian.add c.group a a in
      let targets =
        List.sort_uniq compare
          (List.map (fun b -> if b = a then aa else b) c.generators)
      in
      let config' = C.with_strategy config 0 targets in
      Alcotest.(check int) "new cost" (Bbc.Eval.node_cost inst config' 0) d.new_cost)
    (CG.theorem5_deviations c)

let test_hypercube_thm5_vacuous () =
  (* In Z_2^d every generator is an involution (a + a = 0), so the
     explicit Theorem-5 swap does not apply... *)
  let c = Cayley.hypercube 5 in
  Alcotest.(check (list unit)) "no applicable swaps" []
    (List.map ignore (CG.theorem5_deviations c))

let test_hypercube_unstable_corollary1 () =
  (* ...but Corollary 1 still holds: Q5 is not stable (full check). *)
  let c = Cayley.hypercube 5 in
  Alcotest.(check bool) "Q5 unstable" false (CG.is_stable c)

let test_torus_unstable () =
  let c = Cayley.torus 6 6 in
  Alcotest.(check bool) "6x6 torus unstable" false (CG.is_stable c)

let test_lemma8_near_complete_stable () =
  (* Lemma 8: degree k > (n-2)/2 makes any Abelian Cayley graph stable. *)
  let c = Cayley.circulant ~n:8 ~offsets:[ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check bool) "complete circulant stable" true (CG.is_stable c);
  let c2 = Cayley.circulant ~n:9 ~offsets:[ 1; 2; 3; 4 ] in
  (* k = 4 > (9-2)/2 = 3.5 *)
  Alcotest.(check bool) "k=4 on Z9 stable" true (CG.is_stable c2)

let test_small_ring_stable_below_threshold () =
  (* Theorem 5 only bites for n >= c 2^k; small circulants can be stable. *)
  let c = Cayley.circulant ~n:5 ~offsets:[ 1; 2 ] in
  Alcotest.(check bool) "small circulant stable" true (CG.is_stable c)

let test_best_deviation_ordering () =
  let c = Cayley.circulant ~n:30 ~offsets:[ 1; 3; 10 ] in
  match CG.best_theorem5_deviation c with
  | Some best ->
      List.iter
        (fun (d : CG.deviation) ->
          Alcotest.(check bool) "best dominates" true
            (best.old_cost - best.new_cost >= d.old_cost - d.new_cost))
        (CG.theorem5_deviations c)
  | None ->
      (* If no swap improves, the full check may still find instability;
         just assert the function agrees with its spec. *)
      List.iter
        (fun (d : CG.deviation) ->
          Alcotest.(check bool) "none improve" true (d.new_cost >= d.old_cost))
        (CG.theorem5_deviations c)

let suite =
  [
    Alcotest.test_case "to_game shape" `Quick test_to_game_shape;
    Alcotest.test_case "directed cycle stable (k=1)" `Quick test_directed_cycle_stable;
    Alcotest.test_case "circulant unstable (thm 5)" `Quick test_circulant_unstable;
    Alcotest.test_case "deviation costs are exact" `Quick test_theorem5_deviation_is_real;
    Alcotest.test_case "hypercube: thm-5 swap vacuous" `Quick test_hypercube_thm5_vacuous;
    Alcotest.test_case "hypercube unstable (cor 1)" `Quick test_hypercube_unstable_corollary1;
    Alcotest.test_case "torus unstable" `Quick test_torus_unstable;
    Alcotest.test_case "lemma 8: near-complete stable" `Quick test_lemma8_near_complete_stable;
    Alcotest.test_case "small circulant stable" `Quick test_small_ring_stable_below_threshold;
    Alcotest.test_case "best deviation ordering" `Quick test_best_deviation_ordering;
  ]
