(* Differential tests for the incremental evaluation engine: every
   result must be bit-identical to the from-scratch reference pipeline
   (same costs, same strategies, same dynamics traces), across random
   instances, random move sequences, both objectives, and any job
   count. *)

module Splitmix = Bbc_prng.Splitmix
module Digraph = Bbc_graph.Digraph
module Paths = Bbc_graph.Paths
module Incremental = Bbc_graph.Incremental
module Generators = Bbc_graph.Generators
module I = Bbc.Instance
module C = Bbc.Config
module BR = Bbc.Best_response
module D = Bbc.Dynamics

let objectives = [ Bbc.Objective.Sum; Bbc.Objective.Max ]

(* ---------------------------------------------------------------- *)
(* Layer 1: the dynamic SSSP structure against Paths.shortest.        *)

(* A plain mutable out-edge table we can replay into a Digraph for the
   oracle after every mutation. *)
let to_digraph n out =
  let g = Digraph.create n in
  Array.iteri (fun u es -> List.iter (fun (v, len) -> Digraph.add_edge g u v len) es) out;
  g

let random_out_edges rng n ~max_deg ~max_len u =
  let deg = Splitmix.int rng (max_deg + 1) in
  let targets = Splitmix.sample_without_replacement rng deg n in
  List.filter_map
    (fun v ->
      if v = u then None else Some (v, 1 + Splitmix.int rng max_len))
    targets

let check_sssp_matches ~msg n out ssps =
  let g = to_digraph n out in
  List.iter
    (fun s ->
      let fresh = Paths.shortest g (Incremental.source s) in
      Alcotest.(check (array int))
        (Printf.sprintf "%s (src %d)" msg (Incremental.source s))
        fresh
        (Array.copy (Incremental.distances s));
      Alcotest.(check bool) "well formed" true (Incremental.well_formed s))
    ssps

let test_repair_matches_fresh () =
  let rng = Splitmix.create 42 in
  List.iter
    (fun (n, max_deg, max_len) ->
      let out = Array.init n (fun u -> random_out_edges rng n ~max_deg ~max_len u) in
      let mirror = Incremental.of_digraph (to_digraph n out) in
      let sources = [ 0; n / 2; n - 1 ] in
      let ssps = List.map (Incremental.create mirror) sources in
      check_sssp_matches ~msg:"initial" n out ssps;
      for _step = 1 to 30 do
        let u = Splitmix.int rng n in
        let es = random_out_edges rng n ~max_deg ~max_len u in
        let old = Incremental.replace_out mirror u es in
        let removed = List.filter (fun e -> not (List.mem e es)) old in
        let added = List.filter (fun e -> not (List.mem e old)) es in
        List.iter
          (fun s -> ignore (Incremental.repair s ~u ~removed ~added))
          ssps;
        out.(u) <- es;
        check_sssp_matches ~msg:"after repair" n out ssps
      done)
    [ (12, 2, 1); (20, 3, 4); (30, 1, 1) ]

let test_repair_undo_roundtrip () =
  let rng = Splitmix.create 7 in
  let n = 18 in
  let out = Array.init n (fun u -> random_out_edges rng n ~max_deg:2 ~max_len:3 u) in
  let mirror = Incremental.of_digraph (to_digraph n out) in
  let ssps = List.map (Incremental.create mirror) [ 0; 5; 17 ] in
  for _step = 1 to 25 do
    let before = List.map (fun s -> Array.copy (Incremental.distances s)) ssps in
    let u = Splitmix.int rng n in
    let es = random_out_edges rng n ~max_deg:2 ~max_len:3 u in
    let old = Incremental.replace_out mirror u es in
    let removed = List.filter (fun e -> not (List.mem e es)) old in
    let added = List.filter (fun e -> not (List.mem e old)) es in
    let undos = List.map (fun s -> Incremental.repair s ~u ~removed ~added) ssps in
    (* Roll everything back: the mutation and every repair. *)
    ignore (Incremental.replace_out mirror u old);
    List.iter2 (fun s (_changed, undo) -> Incremental.undo s undo) ssps undos;
    List.iter2
      (fun s dist0 ->
        Alcotest.(check (array int)) "undo restores distances" dist0
          (Array.copy (Incremental.distances s));
        Alcotest.(check bool) "well formed after undo" true (Incremental.well_formed s))
      ssps before
  done

(* ---------------------------------------------------------------- *)
(* Random feasible configurations for arbitrary instances.            *)

let random_config rng instance =
  let n = I.n instance in
  C.of_lists n
    (Array.init n (fun u ->
         let candidates = Array.of_list (BR.candidate_targets instance u) in
         Splitmix.shuffle rng candidates;
         let budget = ref (I.budget instance u) in
         let chosen = ref [] in
         Array.iter
           (fun v ->
             let c = I.cost instance u v in
             if c <= !budget && Splitmix.bool rng then begin
               budget := !budget - c;
               chosen := v :: !chosen
             end)
           candidates;
         !chosen))

(* Instance zoo: uniform k=1 (analytic path), uniform k=2 (masked rows),
   and one of each non-uniform generator (masked or threshold rows
   depending on the realized out-degrees). *)
let instances rng =
  [
    ("uniform k1", I.uniform ~n:14 ~k:1);
    ("uniform k2", I.uniform ~n:10 ~k:2);
    ("random costs", Bbc.Gen_instance.random_costs rng ~n:9 ~k:3 ());
    ("sparse weights", Bbc.Gen_instance.sparse_weights rng ~n:9 ~k:2 ());
    ("metric lengths", Bbc.Gen_instance.metric_lengths rng ~n:8 ~k:2 ());
    ("random budgets", Bbc.Gen_instance.random_budgets rng ~n:9 ~max_budget:3);
  ]

(* ---------------------------------------------------------------- *)
(* Layer 2: context costs and best responses against the oracle.      *)

let test_node_costs_match () =
  let rng = Splitmix.create 11 in
  List.iter
    (fun (name, instance) ->
      let n = I.n instance in
      let config = ref (random_config rng instance) in
      let ctx = Bbc.Incr.create instance !config in
      List.iter
        (fun objective ->
          for _round = 0 to 2 do
            for u = 0 to n - 1 do
              Alcotest.(check int)
                (Printf.sprintf "%s: node %d cost" name u)
                (Bbc.Eval.node_cost ~objective instance !config u)
                (Bbc.Incr.node_cost ~objective ctx u)
            done;
            (* Mutate one random player and re-check through the same
               context (exercises repair + cache invalidation). *)
            let u = Splitmix.int rng n in
            let next = C.with_strategy !config u (C.targets (random_config rng instance) u) in
            config := next;
            Bbc.Incr.ensure ctx next
          done)
        objectives)
    (instances rng)

let test_best_responses_match () =
  let rng = Splitmix.create 23 in
  List.iter
    (fun (name, instance) ->
      let n = I.n instance in
      List.iter
        (fun objective ->
          for _rep = 0 to 2 do
            let config = random_config rng instance in
            let ctx = Bbc.Incr.create instance config in
            for u = 0 to n - 1 do
              let ex_s = BR.exact ~objective instance config u in
              let ex_i = BR.exact ~objective ~ctx instance config u in
              Alcotest.(check (pair (list int) int))
                (Printf.sprintf "%s: exact %d" name u)
                (ex_s.strategy, ex_s.cost)
                (ex_i.strategy, ex_i.cost);
              let imp_s = BR.improving ~objective instance config u in
              let imp_i = BR.improving ~objective ~ctx instance config u in
              Alcotest.(check (option (pair (list int) int)))
                (Printf.sprintf "%s: improving %d" name u)
                (Option.map (fun (r : BR.result) -> (r.strategy, r.cost)) imp_s)
                (Option.map (fun (r : BR.result) -> (r.strategy, r.cost)) imp_i);
              let gr_s = BR.greedy ~objective instance config u in
              let gr_i = BR.greedy ~objective ~ctx instance config u in
              Alcotest.(check (pair (list int) int))
                (Printf.sprintf "%s: greedy %d" name u)
                (gr_s.strategy, gr_s.cost)
                (gr_i.strategy, gr_i.cost)
            done
          done)
        objectives)
    (instances rng)

let test_all_best_match () =
  let rng = Splitmix.create 31 in
  List.iter
    (fun (name, instance) ->
      let config = random_config rng instance in
      let ctx = Bbc.Incr.create instance config in
      for u = 0 to I.n instance - 1 do
        let project = List.map (fun (r : BR.result) -> (r.strategy, r.cost)) in
        Alcotest.(check (list (pair (list int) int)))
          (Printf.sprintf "%s: all_best %d" name u)
          (project (BR.all_best instance config u))
          (project (BR.all_best ~ctx instance config u))
      done)
    (instances rng)

(* A masked enumeration must leave the context exactly as it found it:
   same distances, same cached costs. *)
let test_mask_roundtrip () =
  let rng = Splitmix.create 5 in
  let instance = I.uniform ~n:9 ~k:2 in
  let config = random_config rng instance in
  let ctx = Bbc.Incr.create instance config in
  let n = I.n instance in
  let before = Array.init n (fun v -> Array.copy (Bbc.Incr.distances_from ctx v)) in
  for u = 0 to n - 1 do
    ignore (BR.exact ~ctx instance config u)
  done;
  for v = 0 to n - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "distances from %d unchanged" v)
      before.(v)
      (Array.copy (Bbc.Incr.distances_from ctx v));
    Alcotest.(check int)
      (Printf.sprintf "cost of %d unchanged" v)
      (Bbc.Eval.node_cost instance config v)
      (Bbc.Incr.node_cost ctx v)
  done

(* ---------------------------------------------------------------- *)
(* Layer 3: stability and dynamics differentials.                     *)

let test_stability_matches () =
  let rng = Splitmix.create 47 in
  List.iter
    (fun (name, instance) ->
      List.iter
        (fun objective ->
          let config = random_config rng instance in
          Alcotest.(check bool)
            (name ^ ": is_stable")
            (Bbc.Stability.is_stable ~objective ~incremental:false instance config)
            (Bbc.Stability.is_stable ~objective ~incremental:true instance config);
          let project (d : Bbc.Stability.deviation option) =
            Option.map
              (fun (d : Bbc.Stability.deviation) ->
                (d.node, d.current_cost, d.better.strategy, d.better.cost))
              d
          in
          let dev_s =
            Bbc.Stability.find_deviation ~objective ~incremental:false instance config
          in
          let dev_i =
            Bbc.Stability.find_deviation ~objective ~incremental:true instance config
          in
          Alcotest.(check bool)
            (name ^ ": find_deviation")
            true
            (project dev_s = project dev_i);
          Alcotest.(check (list int))
            (name ^ ": unstable_nodes")
            (Bbc.Stability.unstable_nodes ~objective ~incremental:false instance config)
            (Bbc.Stability.unstable_nodes ~objective ~incremental:true instance config);
          Alcotest.(check int)
            (name ^ ": stability_gap")
            (Bbc.Stability.stability_gap ~objective ~incremental:false instance config)
            (Bbc.Stability.stability_gap ~objective ~incremental:true instance config))
        objectives)
    (instances rng)

let record_trace ?policy ?objective ~incremental ~scheduler ~max_rounds instance config =
  let steps = ref [] in
  let outcome =
    D.run ?policy ?objective ~incremental
      ~on_step:(fun (s : D.step) ->
        steps := (s.index, s.round, s.node, s.moved, s.strategy, s.cost_after) :: !steps)
      ~scheduler ~max_rounds instance config
  in
  (List.rev !steps, outcome)

let check_same_run ~msg (steps_s, outcome_s) (steps_i, outcome_i) =
  Alcotest.(check bool) (msg ^ ": identical step streams") true (steps_s = steps_i);
  Alcotest.(check bool)
    (msg ^ ": identical final configs")
    true
    (C.equal (D.final_config outcome_s) (D.final_config outcome_i));
  let st (o : D.outcome) =
    let s = D.stats o in
    let kind =
      match o with
      | D.Converged _ -> "converged"
      | D.Cycled { period; _ } -> "cycled-" ^ string_of_int period
      | D.Exhausted _ -> "exhausted"
    in
    (kind, s.rounds, s.steps, s.deviations)
  in
  Alcotest.(check bool) (msg ^ ": identical outcomes") true (st outcome_s = st outcome_i)

let test_dynamics_traces_match () =
  let cases =
    [
      ("ring-path", Bbc.Constructions.ring_with_path ~ring:12 ~path:5);
      ("loop7", Bbc.Constructions.best_response_loop ());
      ( "random k2",
        (let inst = I.uniform ~n:8 ~k:2 in
         ( inst,
           C.of_graph (Generators.random_k_out (Splitmix.create 3) ~n:8 ~k:2) )) );
      ( "random costs",
        (let rng = Splitmix.create 13 in
         let inst = Bbc.Gen_instance.random_costs rng ~n:8 ~k:3 () in
         (inst, random_config rng inst)) );
    ]
  in
  List.iter
    (fun (name, (instance, config)) ->
      List.iter
        (fun (sched_name, scheduler) ->
          List.iter
            (fun policy ->
              let msg = Printf.sprintf "%s/%s" name sched_name in
              let scratch =
                record_trace ~policy ~incremental:false ~scheduler ~max_rounds:40
                  instance config
              in
              let incr =
                record_trace ~policy ~incremental:true ~scheduler ~max_rounds:40
                  instance config
              in
              check_same_run ~msg scratch incr)
            [ D.Exact_best_response; D.First_improvement ])
        [
          ("round-robin", D.Round_robin);
          ("random-order", D.Random_order 9);
          ("max-cost", D.Max_cost_first);
        ])
    cases

let test_dynamics_jobs_invariant () =
  (* The incremental engine is sequential by construction; the scratch
     engine fans over the pool.  Every combination must agree. *)
  let instance, config = Bbc.Constructions.ring_with_path ~ring:10 ~path:4 in
  let runs =
    List.concat_map
      (fun incremental ->
        List.map
          (fun jobs ->
            Bbc_parallel.set_default_jobs jobs;
            record_trace ~incremental ~scheduler:D.Max_cost_first ~max_rounds:400
              instance config)
          [ 1; 4 ])
      [ false; true ]
  in
  Bbc_parallel.set_default_jobs 1;
  match runs with
  | first :: rest ->
      List.iteri
        (fun i other ->
          check_same_run ~msg:(Printf.sprintf "combination %d" (i + 1)) first other)
        rest
  | [] -> assert false

let test_env_flag_and_switch () =
  let saved = Bbc.Incr.enabled () in
  Bbc.Incr.set_enabled false;
  Alcotest.(check bool) "disabled" false (Bbc.Incr.enabled ());
  Alcotest.(check bool) "resolve explicit wins" true (Bbc.Incr.resolve (Some true));
  Alcotest.(check bool) "resolve default" false (Bbc.Incr.resolve None);
  Bbc.Incr.set_enabled saved

let suite =
  [
    Alcotest.test_case "repair matches fresh SSSP" `Quick test_repair_matches_fresh;
    Alcotest.test_case "repair/undo roundtrip" `Quick test_repair_undo_roundtrip;
    Alcotest.test_case "node costs match oracle" `Quick test_node_costs_match;
    Alcotest.test_case "best responses match oracle" `Quick test_best_responses_match;
    Alcotest.test_case "all_best matches oracle" `Quick test_all_best_match;
    Alcotest.test_case "mask roundtrip preserves context" `Quick test_mask_roundtrip;
    Alcotest.test_case "stability matches oracle" `Quick test_stability_matches;
    Alcotest.test_case "dynamics traces bit-identical" `Quick test_dynamics_traces_match;
    Alcotest.test_case "dynamics jobs-invariant" `Quick test_dynamics_jobs_invariant;
    Alcotest.test_case "engine switch" `Quick test_env_flag_and_switch;
  ]
