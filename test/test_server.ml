(* In-process exercises of the bbc serve stack (Protocol -> Engine ->
   Handlers -> Session), covering the behaviours the wire tests can't
   pin down deterministically: deadline expiry (fake clock), overload
   rejection, drain-on-shutdown, and bit-identity of served answers
   against the direct library. *)

module Json = Bbc.Json
module Engine = Bbc_server.Engine
module Protocol = Bbc_server.Protocol

let mk_engine ?(queue_cap = 256) ?(max_batch = 64) ?(jobs = 1) ?now () =
  let d = Engine.default_config () in
  let now = Option.value now ~default:d.Engine.now in
  Engine.create
    { d with Engine.queue_cap; max_batch; jobs = Some jobs; now }

(* Submit a raw line; [`Queued] and [`Reply] both end up as response
   strings after [run_batch], so tests drive everything through
   [ask]. *)
let ask engine line =
  match Engine.submit engine ~client:0 line with
  | `Reply r -> r
  | `Queued -> (
      match Engine.run_batch engine with
      | [ (_, r) ] -> r
      | rs -> Alcotest.failf "expected one response, got %d" (List.length rs))

let parse r =
  match Json.of_string r with
  | Ok v -> v
  | Error e -> Alcotest.failf "bad response %S: %s" r e

let ok_payload r =
  let v = parse r in
  match Json.member "ok" v with
  | Some p -> p
  | None -> Alcotest.failf "expected ok response, got %s" r

let error_code r =
  let v = parse r in
  match Option.bind (Json.member "error" v) (Json.member "code") with
  | Some (Json.Str c) -> c
  | _ -> Alcotest.failf "expected error response, got %s" r

let field name p =
  match Json.member name p with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" name (Json.to_string p)

let int_field name p =
  match Json.to_int (field name p) with
  | Some i -> i
  | None -> Alcotest.failf "field %S not an int" name

let req ?deadline_ms id meth params =
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str id); ("method", Json.Str meth); ("params", Json.Obj params) ]
       @ match deadline_ms with Some ms -> [ ("deadline_ms", Json.Int ms) ] | None -> []))

let gen_session engine ?(name = "ring") ?(n = 6) () =
  let p = ok_payload (ask engine (req "g" "gen" [ ("name", Json.Str name); ("n", Json.Int n) ])) in
  match field "session" p with
  | Json.Str sid -> sid
  | _ -> Alcotest.fail "gen returned no session id"

(* ---------------------------------------------------------------- *)

let test_lifecycle () =
  let engine = mk_engine () in
  let sid = gen_session engine ~n:6 () in
  Alcotest.(check string) "first session id" "s1" sid;
  let costs = ok_payload (ask engine (req "c" "cost" [ ("session", Json.Str sid) ])) in
  Alcotest.(check int) "social" 90 (int_field "social" costs);
  (* close, then the session is gone *)
  let closed = ok_payload (ask engine (req "x" "close_session" [ ("session", Json.Str sid) ])) in
  Alcotest.(check bool) "closed" true (field "closed" closed = Json.Bool true);
  Alcotest.(check string) "gone" "unknown_session"
    (error_code (ask engine (req "c2" "cost" [ ("session", Json.Str sid) ])));
  let closed2 = ok_payload (ask engine (req "x2" "close_session" [ ("session", Json.Str sid) ])) in
  Alcotest.(check bool) "idempotent close" true (field "closed" closed2 = Json.Bool false)

let test_malformed () =
  let engine = mk_engine () in
  Alcotest.(check string) "not json" "bad_request" (error_code (ask engine "{"));
  Alcotest.(check string) "no method" "bad_request"
    (error_code (ask engine "{\"id\":\"1\"}"));
  Alcotest.(check string) "unknown method" "unknown_method"
    (error_code (ask engine (req "1" "frobnicate" [])));
  Alcotest.(check string) "bad params kind" "bad_request"
    (error_code (ask engine "{\"id\":\"1\",\"method\":\"ping\",\"params\":[]}"));
  Alcotest.(check string) "negative deadline" "bad_request"
    (error_code
       (ask engine "{\"id\":\"1\",\"method\":\"ping\",\"params\":{},\"deadline_ms\":-1}"));
  let engine = mk_engine () in
  let sid = gen_session engine () in
  Alcotest.(check string) "missing param" "bad_params"
    (error_code (ask engine (req "2" "best_response" [ ("session", Json.Str sid) ])));
  Alcotest.(check string) "node out of range" "bad_params"
    (error_code
       (ask engine (req "3" "cost" [ ("session", Json.Str sid); ("node", Json.Int 99) ])));
  Alcotest.(check string) "unknown construction" "bad_params"
    (error_code (ask engine (req "4" "gen" [ ("name", Json.Str "nope") ])));
  (* a nesting bomb is a structured parse error, not a crash *)
  Alcotest.(check string) "nesting bomb" "bad_request"
    (error_code (ask engine (String.make 100_000 '[')))

let test_deadline_expiry () =
  let clock = ref 0 in
  let engine = mk_engine ~now:(fun () -> !clock) () in
  let sid = gen_session engine () in
  (* Queue two requests with deadlines, then let 50 ms pass before the
     scheduler runs: the 10 ms one must expire in the queue, the 100 ms
     one must still be served. *)
  (match
     Engine.submit engine ~client:0
       (req ~deadline_ms:10 "dead" "cost" [ ("session", Json.Str sid) ])
   with
  | `Queued -> ()
  | `Reply r -> Alcotest.failf "unexpected immediate reply %s" r);
  (match
     Engine.submit engine ~client:0
       (req ~deadline_ms:100 "alive" "cost" [ ("session", Json.Str sid) ])
   with
  | `Queued -> ()
  | `Reply r -> Alcotest.failf "unexpected immediate reply %s" r);
  clock := 50 * 1_000_000;
  (match Engine.run_batch engine with
  | [ (_, r1); (_, r2) ] ->
      Alcotest.(check string) "expired" "timeout" (error_code r1);
      Alcotest.(check int) "served" 90 (int_field "social" (ok_payload r2))
  | rs -> Alcotest.failf "expected two responses, got %d" (List.length rs));
  let stats = ok_payload (ask engine (req "s" "stats" [])) in
  Alcotest.(check int) "timeout counted" 1 (int_field "timeouts" stats)

let test_overload () =
  let engine = mk_engine ~queue_cap:2 () in
  let sid = gen_session engine () in
  let q i =
    Engine.submit engine ~client:0
      (req (string_of_int i) "cost" [ ("session", Json.Str sid) ])
  in
  (match (q 1, q 2) with
  | `Queued, `Queued -> ()
  | _ -> Alcotest.fail "first two admissions should queue");
  (match q 3 with
  | `Reply r -> Alcotest.(check string) "backpressure" "overloaded" (error_code r)
  | `Queued -> Alcotest.fail "third admission should be rejected");
  (* the rejection did not cancel queued work *)
  Alcotest.(check int) "queued survive" 2 (List.length (Engine.run_batch engine));
  let stats = ok_payload (ask engine (req "s" "stats" [])) in
  Alcotest.(check int) "overload counted" 1 (int_field "overloaded" stats)

let test_drain_on_shutdown () =
  let engine = mk_engine () in
  let sid = gen_session engine () in
  for i = 1 to 5 do
    match
      Engine.submit engine ~client:i
        (req (Printf.sprintf "q%d" i) "cost" [ ("session", Json.Str sid) ])
    with
    | `Queued -> ()
    | `Reply r -> Alcotest.failf "unexpected immediate reply %s" r
  done;
  Engine.begin_shutdown engine;
  (* post-shutdown admissions are refused... *)
  (match Engine.submit engine ~client:9 (req "late" "ping" []) with
  | `Reply r -> Alcotest.(check string) "refused" "shutting_down" (error_code r)
  | `Queued -> Alcotest.fail "admission after shutdown");
  (* ...but everything admitted before the signal is served, in
     admission order. *)
  let replies = Engine.drain engine in
  Alcotest.(check int) "all drained" 5 (List.length replies);
  Alcotest.(check (list int)) "admission order" [ 1; 2; 3; 4; 5 ]
    (List.map fst replies);
  List.iter
    (fun (_, r) -> Alcotest.(check int) "drained answer" 90 (int_field "social" (ok_payload r)))
    replies;
  Alcotest.(check int) "queue empty" 0 (Engine.pending engine)

(* The shutdown endpoint itself: executed, acknowledged, and visible to
   the transport via [shutdown_requested]. *)
let test_shutdown_request () =
  let engine = mk_engine () in
  Alcotest.(check bool) "not yet" false (Engine.shutdown_requested engine);
  let p = ok_payload (ask engine (req "sd" "shutdown" [])) in
  Alcotest.(check bool) "acknowledged" true (field "stopping" p = Json.Bool true);
  Alcotest.(check bool) "flagged" true (Engine.shutdown_requested engine)

(* Served answers must be bit-identical to the direct library: same
   costs, same stability verdict, same best response. *)
let test_bit_identity () =
  let engine = mk_engine () in
  let name = "random" and n = 10 in
  let sid = gen_session engine ~name ~n () in
  let instance, config =
    match Bbc.Catalog.build name { Bbc.Catalog.default_params with n } with
    | Ok ic -> ic
    | Error e -> Alcotest.fail e
  in
  let direct = Bbc.Eval.all_costs instance config in
  let served = ok_payload (ask engine (req "c" "cost" [ ("session", Json.Str sid) ])) in
  (match Json.int_list (field "costs" served) with
  | Some costs ->
      Alcotest.(check (list int)) "per-node costs" (Array.to_list direct) costs
  | None -> Alcotest.fail "costs not an int list");
  Alcotest.(check int) "social cost"
    (Bbc.Eval.social_cost instance config)
    (int_field "social" served);
  let stable = ok_payload (ask engine (req "st" "stable" [ ("session", Json.Str sid) ])) in
  Alcotest.(check bool) "stability verdict"
    (Bbc.Stability.is_stable instance config)
    (field "stable" stable = Json.Bool true);
  for u = 0 to n - 1 do
    let r = Bbc.Best_response.exact instance config u in
    let served =
      ok_payload
        (ask engine (req "br" "best_response" [ ("session", Json.Str sid); ("node", Json.Int u) ]))
    in
    Alcotest.(check int) "br cost" r.cost (int_field "cost" served);
    match Json.int_list (field "strategy" served) with
    | Some s -> Alcotest.(check (list int)) "br strategy" r.strategy s
    | None -> Alcotest.fail "strategy not an int list"
  done

(* step_dynamics is Dynamics.run under Round_robin/Exact_best_response,
   one activation at a time: walking a session to convergence must
   reproduce the library walk's final configuration and deviation
   count. *)
let test_step_dynamics_differential () =
  let name = "random" and n = 9 in
  let instance, config0 =
    match Bbc.Catalog.build name { Bbc.Catalog.default_params with n } with
    | Ok ic -> ic
    | Error e -> Alcotest.fail e
  in
  let outcome =
    Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:500 instance config0
  in
  let reference, stats =
    match outcome with
    | Bbc.Dynamics.Converged (c, s) -> (c, s)
    | _ -> Alcotest.fail "reference walk did not converge"
  in
  let engine = mk_engine () in
  let sid = gen_session engine ~name ~n () in
  let rec walk guard =
    if guard = 0 then Alcotest.fail "server walk did not converge";
    let p =
      ok_payload
        (ask engine (req "w" "step_dynamics" [ ("session", Json.Str sid); ("steps", Json.Int 1) ]))
    in
    if field "converged" p <> Json.Bool true then walk (guard - 1)
    else int_field "deviations" p
  in
  let deviations = walk 100_000 in
  Alcotest.(check int) "deviation count" stats.Bbc.Dynamics.deviations deviations;
  let served_config =
    match
      Bbc.Codec.config_of_json (ok_payload (ask engine (req "cf" "config" [ ("session", Json.Str sid) ])))
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "final configuration" true (Bbc.Config.equal reference served_config)

(* Interleaved sessions exercise the batch scheduler's grouping: answers
   come back in admission order and match the single-session runs. *)
let test_batch_interleaving () =
  let engine = mk_engine ~jobs:4 () in
  let a = gen_session engine ~name:"ring" ~n:6 () in
  let b = gen_session engine ~name:"random" ~n:8 () in
  let expected_a = "90" and ids = ref [] in
  for i = 0 to 9 do
    let sid = if i mod 2 = 0 then a else b in
    ids := Printf.sprintf "i%d" i :: !ids;
    match
      Engine.submit engine ~client:i (req (Printf.sprintf "i%d" i) "cost" [ ("session", Json.Str sid) ])
    with
    | `Queued -> ()
    | `Reply r -> Alcotest.failf "unexpected immediate reply %s" r
  done;
  let replies = Engine.drain engine in
  Alcotest.(check (list int)) "admission order" (List.init 10 Fun.id) (List.map fst replies);
  List.iteri
    (fun i (_, r) ->
      let p = ok_payload r in
      if i mod 2 = 0 then
        Alcotest.(check string) "ring social" expected_a
          (Json.to_string (field "social" p)))
    replies

(* gen and close_session execute as independent singleton groups on the
   domain pool: a batch full of them runs store mutations concurrently,
   which must neither corrupt the table nor hand out duplicate ids. *)
let test_concurrent_session_churn () =
  let engine = mk_engine ~jobs:4 () in
  let n_req = 32 in
  for i = 0 to n_req - 1 do
    match
      Engine.submit engine ~client:i
        (req (Printf.sprintf "g%d" i) "gen" [ ("name", Json.Str "ring"); ("n", Json.Int 5) ])
    with
    | `Queued -> ()
    | `Reply r -> Alcotest.failf "unexpected immediate reply %s" r
  done;
  let replies = Engine.drain engine in
  Alcotest.(check int) "all served" n_req (List.length replies);
  let sids =
    List.map
      (fun (_, r) ->
        match field "session" (ok_payload r) with
        | Json.Str s -> s
        | _ -> Alcotest.fail "gen returned no session id")
      replies
  in
  Alcotest.(check int) "unique session ids" n_req
    (List.length (List.sort_uniq compare sids));
  Alcotest.(check int) "store count" n_req
    (Bbc_server.Session.count (Engine.sessions engine));
  (* every minted session is really in the store, then concurrent
     teardown drains it completely *)
  List.iteri
    (fun i sid ->
      match
        Engine.submit engine ~client:i
          (req (Printf.sprintf "x%d" i) "close_session" [ ("session", Json.Str sid) ])
      with
      | `Queued -> ()
      | `Reply r -> Alcotest.failf "unexpected immediate reply %s" r)
    sids;
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "closed" true
        (field "closed" (ok_payload r) = Json.Bool true))
    (Engine.drain engine);
  Alcotest.(check int) "store empty" 0 (Bbc_server.Session.count (Engine.sessions engine))

(* At capacity the store evicts sessions idle past the TTL instead of
   refusing forever; warm sessions survive the eviction. *)
let test_session_expiry () =
  let clock = ref 0 in
  let d = Engine.default_config () in
  let engine =
    Engine.create
      {
        d with
        Engine.jobs = Some 1;
        session_cap = 2;
        session_ttl_ms = 1_000;
        now = (fun () -> !clock);
      }
  in
  let s1 = gen_session engine () in
  let s2 = gen_session engine () in
  Alcotest.(check string) "full and nothing idle" "session_limit"
    (error_code (ask engine (req "g3" "gen" [ ("name", Json.Str "ring"); ("n", Json.Int 5) ])));
  (* keep s1 warm; s2 idles past the 1 s TTL *)
  clock := 900 * 1_000_000;
  ignore (ok_payload (ask engine (req "c1" "cost" [ ("session", Json.Str s1) ])));
  clock := 1_500 * 1_000_000;
  let p =
    ok_payload (ask engine (req "g4" "gen" [ ("name", Json.Str "ring"); ("n", Json.Int 5) ]))
  in
  Alcotest.(check bool) "eviction made room" true (field "session" p <> Json.Null);
  Alcotest.(check int) "still two live" 2 (Bbc_server.Session.count (Engine.sessions engine));
  ignore (ok_payload (ask engine (req "c2" "cost" [ ("session", Json.Str s1) ])));
  Alcotest.(check string) "idle session evicted" "unknown_session"
    (error_code (ask engine (req "c3" "cost" [ ("session", Json.Str s2) ])))

let suite =
  [
    Alcotest.test_case "session lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "malformed requests" `Quick test_malformed;
    Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
    Alcotest.test_case "overload rejection" `Quick test_overload;
    Alcotest.test_case "drain on shutdown" `Quick test_drain_on_shutdown;
    Alcotest.test_case "shutdown request" `Quick test_shutdown_request;
    Alcotest.test_case "bit identity vs library" `Quick test_bit_identity;
    Alcotest.test_case "step_dynamics differential" `Quick test_step_dynamics_differential;
    Alcotest.test_case "batch interleaving" `Quick test_batch_interleaving;
    Alcotest.test_case "concurrent session churn" `Quick test_concurrent_session_churn;
    Alcotest.test_case "idle session expiry" `Quick test_session_expiry;
  ]
