(* Tests of the fuzz subsystem itself: generator determinism, shrink
   tree shape, runner shrinking, and the differential suites. *)

module F = Bbc_fuzz.Gen
module DG = Bbc_fuzz.Domain_gen
module R = Bbc_fuzz.Runner
module Diff = Bbc_fuzz.Diff
module I = Bbc.Instance
module C = Bbc.Config

let take n s = List.of_seq (Seq.take n s)

let test_generate_deterministic () =
  for seed = 0 to 20 do
    let a = F.generate ~seed (DG.instance_config ()) in
    let b = F.generate ~seed (DG.instance_config ()) in
    let render (inst, cfg) =
      Bbc.Codec.instance_to_string inst ^ Bbc.Codec.config_to_string cfg
    in
    Alcotest.(check string)
      "same seed, same value" (render (F.root a)) (render (F.root b));
    (* The first shrink candidates replay identically too. *)
    Alcotest.(check (list string))
      "same seed, same shrink candidates"
      (List.map (fun t -> render (F.root t)) (take 5 (F.children a)))
      (List.map (fun t -> render (F.root t)) (take 5 (F.children b)))
  done

(* int_range shrinks toward the low bound, most aggressive first. *)
let test_int_shrink_order () =
  let rec find_tree seed =
    let t = F.generate ~seed (F.int_range 3 100) in
    if F.root t > 10 then t else find_tree (seed + 1)
  in
  let t = find_tree 0 in
  let x = F.root t in
  let candidates = List.map F.root (take 3 (F.children t)) in
  (match candidates with
  | first :: _ -> Alcotest.(check int) "first candidate is lo" 3 first
  | [] -> Alcotest.fail "no shrink candidates");
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidates stay in range" true (c >= 3 && c < x))
    candidates

let test_list_shrinks_by_removal_first () =
  let rec find_tree seed =
    let t = F.generate ~seed (F.list ~max_len:6 (F.int_bound 9)) in
    if List.length (F.root t) >= 3 then t else find_tree (seed + 1)
  in
  let t = find_tree 0 in
  match take 1 (F.children t) with
  | [ first ] ->
      Alcotest.(check (list int)) "first candidate drops everything" [] (F.root first)
  | _ -> Alcotest.fail "no shrink candidates"

let test_bool_shrinks_to_false () =
  let rec find_true seed =
    let t = F.generate ~seed F.bool in
    if F.root t then t else find_true (seed + 1)
  in
  let t = find_true 0 in
  Alcotest.(check (list bool))
    "true shrinks to false" [ false ]
    (List.map F.root (List.of_seq (F.children t)))

let test_such_that_filters_shrinks () =
  let g = F.such_that (fun x -> x mod 2 = 0) (F.int_bound 100) in
  for seed = 0 to 30 do
    match F.generate ~seed g with
    | t ->
        Alcotest.(check bool) "root satisfies" true (F.root t mod 2 = 0);
        Seq.iter
          (fun c ->
            Alcotest.(check bool) "children satisfy" true (F.root c mod 2 = 0))
          (F.children t)
    | exception F.Discard -> ()
  done

(* The classic shrinking benchmark: x >= threshold must shrink to
   exactly the threshold under greedy descent. *)
let test_runner_shrinks_to_boundary () =
  match
    R.run ~count:200 ~seed:11 (F.int_bound 1000) (fun x ->
        if x < 37 then Ok () else Error "too big")
  with
  | Ok (Some f, _) ->
      Alcotest.(check int) "shrinks to the boundary" 37 f.R.shrunk;
      Alcotest.(check string) "keeps the failure message" "too big" f.R.shrunk_error
  | Ok (None, _) -> Alcotest.fail "property should have failed"
  | Error e -> Alcotest.fail e

let test_runner_respects_step_budget () =
  match
    R.run ~count:50 ~max_shrink_steps:0 ~seed:5 (F.int_bound 1000) (fun x ->
        if x < 1 then Ok () else Error "fail")
  with
  | Ok (Some f, stats) ->
      Alcotest.(check int) "no shrink steps used" 0 f.R.steps_used;
      Alcotest.(check int) "stats agree" 0 stats.R.shrink_steps;
      Alcotest.(check int) "counterexample unshrunk" f.R.original f.R.shrunk
  | Ok (None, _) -> Alcotest.fail "property should have failed"
  | Error e -> Alcotest.fail e

let test_runner_counts_discards () =
  let g = F.such_that ~max_tries:1 (fun x -> x < 10) (F.int_bound 1000) in
  match R.run ~count:20 ~seed:3 g (fun _ -> Ok ()) with
  | Ok (None, stats) ->
      Alcotest.(check int) "all cases ran" 20 stats.R.cases;
      Alcotest.(check bool) "some cases discarded" true (stats.R.discards > 0)
  | Ok (Some _, _) -> Alcotest.fail "property cannot fail"
  | Error _ -> () (* acceptable: the discard budget itself overflowed *)

let test_runner_deterministic () =
  let run () =
    R.run ~count:30 ~seed:99 (DG.instance ()) (fun inst ->
        if I.n inst mod 7 = 3 then Error "planted" else Ok ())
  in
  match (run (), run ()) with
  | Ok (Some a, _), Ok (Some b, _) ->
      Alcotest.(check int) "same failing case" a.R.case b.R.case;
      Alcotest.(check string)
        "same shrunk instance"
        (Bbc.Codec.instance_to_string a.R.shrunk)
        (Bbc.Codec.instance_to_string b.R.shrunk)
  | Ok (None, _), Ok (None, _) -> ()
  | _ -> Alcotest.fail "two identical runs disagreed"

let test_generated_configs_feasible () =
  for seed = 0 to 50 do
    let inst, cfg = F.root (F.generate ~seed (DG.instance_config ())) in
    Alcotest.(check bool) "config feasible" true (C.feasible inst cfg)
  done

let test_generated_moves_feasible () =
  let gen =
    let open F in
    let* inst, cfg = DG.instance_config () in
    let+ ms = DG.moves inst in
    (inst, cfg, ms)
  in
  for seed = 0 to 30 do
    let inst, cfg, ms = F.root (F.generate ~seed gen) in
    let final =
      List.fold_left (fun c (u, s) -> C.with_strategy c u s) cfg ms
    in
    Alcotest.(check bool) "moves keep the profile feasible" true
      (C.feasible inst final)
  done

let quick_opts = { Diff.seed = 2; count = 5; max_shrink_steps = 200 }

let test_diff_suites_pass () =
  List.iter
    (fun name ->
      match Diff.run_suite quick_opts name with
      | Error e -> Alcotest.fail e
      | Ok reports ->
          List.iter
            (fun (r : Diff.prop_report) ->
              match r.failure with
              | None -> ()
              | Some f ->
                  Alcotest.failf "%s/%s failed: %s" name r.name f.message)
            reports)
    [ "csr"; "incr"; "br"; "server" ]

let test_selfcheck_finds_planted_bug () =
  match Diff.run_suite { quick_opts with count = 20 } "selfcheck" with
  | Error e -> Alcotest.fail e
  | Ok reports -> (
      match reports with
      | [ { failure = Some f; _ } ] ->
          Alcotest.(check bool) "shrunk to a tiny instance" true
            (I.n f.instance <= 8)
      | _ -> Alcotest.fail "selfcheck suite must fail on its planted bug")

let suite =
  [
    Alcotest.test_case "generate is deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "int shrink order" `Quick test_int_shrink_order;
    Alcotest.test_case "list shrinks by removal" `Quick test_list_shrinks_by_removal_first;
    Alcotest.test_case "bool shrinks to false" `Quick test_bool_shrinks_to_false;
    Alcotest.test_case "such_that filters shrinks" `Quick test_such_that_filters_shrinks;
    Alcotest.test_case "runner shrinks to boundary" `Quick test_runner_shrinks_to_boundary;
    Alcotest.test_case "runner respects step budget" `Quick test_runner_respects_step_budget;
    Alcotest.test_case "runner counts discards" `Quick test_runner_counts_discards;
    Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "generated configs feasible" `Quick test_generated_configs_feasible;
    Alcotest.test_case "generated moves feasible" `Quick test_generated_moves_feasible;
    Alcotest.test_case "differential suites pass" `Quick test_diff_suites_pass;
    Alcotest.test_case "selfcheck finds planted bug" `Quick test_selfcheck_finds_planted_bug;
  ]
