module D = Bbc_graph.Digraph
module M = Bbc_graph.Metrics
module G = Bbc_graph.Generators

let test_ring_diameter () =
  let g = G.directed_ring 6 in
  Alcotest.(check (option int)) "diameter" (Some 5) (M.diameter g);
  Alcotest.(check (option int)) "radius" (Some 5) (M.radius g)

let test_path_diameter_none () =
  let g = G.directed_path 4 in
  Alcotest.(check (option int)) "not strongly connected" None (M.diameter g);
  (* The head still reaches everyone: radius is defined. *)
  Alcotest.(check (option int)) "radius from head" (Some 3) (M.radius g)

let test_complete () =
  let g = G.complete 5 in
  Alcotest.(check (option int)) "diameter 1" (Some 1) (M.diameter g);
  Alcotest.(check (option int)) "sum of distances" (Some 20) (M.sum_of_distances g);
  Alcotest.(check (option (float 1e-9))) "average" (Some 1.0) (M.average_distance g)

let test_eccentricity () =
  let g = G.directed_ring 5 in
  Alcotest.(check (option int)) "ring ecc" (Some 4) (M.eccentricity g 2);
  let h = G.directed_path 3 in
  Alcotest.(check (option int)) "tail sees nobody" None (M.eccentricity h 2)

let test_total_distance () =
  let g = G.directed_path 4 in
  Alcotest.(check (option int)) "1+2+3" (Some 6) (M.total_distance g 0);
  Alcotest.(check (option int)) "unreachable" None (M.total_distance g 1)

let test_weighted_diameter () =
  let g = D.of_edges 3 [ (0, 1, 5); (1, 2, 5); (2, 0, 5) ] in
  Alcotest.(check (option int)) "weighted" (Some 10) (M.diameter g)

let test_degrees () =
  let g = D.of_unit_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  Alcotest.(check int) "max degree" 3 (M.max_out_degree g);
  Alcotest.(check (list (pair int int))) "histogram" [ (0, 2); (1, 1); (3, 1) ]
    (M.degree_histogram g)

let test_singleton () =
  let g = D.create 1 in
  Alcotest.(check (option int)) "diameter of a point" (Some 0) (M.diameter g);
  Alcotest.(check (option int)) "eccentricity" (Some 0) (M.eccentricity g 0)

let suite =
  [
    Alcotest.test_case "ring diameter/radius" `Quick test_ring_diameter;
    Alcotest.test_case "path has no diameter" `Quick test_path_diameter_none;
    Alcotest.test_case "complete graph" `Quick test_complete;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "total distance" `Quick test_total_distance;
    Alcotest.test_case "weighted diameter" `Quick test_weighted_diameter;
    Alcotest.test_case "degree stats" `Quick test_degrees;
    Alcotest.test_case "singleton graph" `Quick test_singleton;
  ]
