module I = Bbc.Instance
module C = Bbc.Config
module D = Bbc_graph.Digraph

let test_empty () =
  let c = C.empty 4 in
  Alcotest.(check int) "n" 4 (C.n c);
  Alcotest.(check int) "no edges" 0 (C.edge_count c);
  Alcotest.(check (list int)) "empty strategy" [] (C.targets c 2)

let test_of_lists_sorted () =
  let c = C.of_lists 4 [| [ 3; 1 ]; []; [ 0 ]; [] |] in
  Alcotest.(check (list int)) "sorted targets" [ 1; 3 ] (C.targets c 0);
  Alcotest.(check int) "strategy size" 2 (C.strategy_size c 0);
  Alcotest.(check int) "edge count" 3 (C.edge_count c)

let test_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> C.of_lists 3 [| [ 0 ]; []; [] |]);
  (* self link *)
  expect_invalid (fun () -> C.of_lists 3 [| [ 5 ]; []; [] |]);
  (* out of range *)
  expect_invalid (fun () -> C.of_lists 3 [| [ 1; 1 ]; []; [] |]);
  (* duplicate *)
  expect_invalid (fun () -> C.of_lists 3 [| []; [] |])
(* wrong length *)

let test_with_strategy_persistent () =
  let c = C.of_lists 3 [| [ 1 ]; [ 2 ]; [] |] in
  let c' = C.with_strategy c 2 [ 0 ] in
  Alcotest.(check (list int)) "updated" [ 0 ] (C.targets c' 2);
  Alcotest.(check (list int)) "original unchanged" [] (C.targets c 2);
  Alcotest.(check bool) "not equal" false (C.equal c c')

let test_to_graph_lengths () =
  let w = Array.make_matrix 3 3 1 in
  let cost = Array.make_matrix 3 3 1 in
  let len = [| [| 1; 5; 1 |]; [| 1; 1; 2 |]; [| 1; 1; 1 |] |] in
  let inst = I.general ~weight:w ~cost ~length:len ~budget:[| 2; 2; 2 |] () in
  let c = C.of_lists 3 [| [ 1 ]; [ 2 ]; [] |] in
  let g = C.to_graph inst c in
  Alcotest.(check (option int)) "length carried" (Some 5) (D.edge_length g 0 1);
  Alcotest.(check (option int)) "length carried" (Some 2) (D.edge_length g 1 2)

let test_of_graph_roundtrip () =
  let inst = I.uniform ~n:5 ~k:2 in
  let c = C.of_lists 5 [| [ 1; 2 ]; [ 3 ]; []; [ 0; 4 ]; [ 2 ] |] in
  let c' = C.of_graph (C.to_graph inst c) in
  Alcotest.(check bool) "roundtrip" true (C.equal c c')

let test_spend_and_feasible () =
  let w = Array.make_matrix 3 3 0 in
  let cost = [| [| 0; 2; 3 |]; [| 1; 0; 1 |]; [| 1; 1; 0 |] |] in
  let ones = Array.make_matrix 3 3 1 in
  let inst = I.general ~weight:w ~cost ~length:ones ~budget:[| 4; 1; 0 |] () in
  let c = C.of_lists 3 [| [ 1; 2 ]; [ 0 ]; [] |] in
  Alcotest.(check int) "spend 0" 5 (C.spend inst c 0);
  Alcotest.(check bool) "infeasible" false (C.feasible inst c);
  let c' = C.with_strategy c 0 [ 1 ] in
  Alcotest.(check bool) "feasible" true (C.feasible inst c')

let test_equal_hash () =
  let a = C.of_lists 3 [| [ 1; 2 ]; []; [ 0 ] |] in
  let b = C.of_lists 3 [| [ 2; 1 ]; []; [ 0 ] |] in
  Alcotest.(check bool) "order-insensitive" true (C.equal a b);
  Alcotest.(check int) "hash agrees" (C.hash a) (C.hash b);
  let c = C.of_lists 3 [| [ 1 ]; [ 2 ]; [ 0 ] |] in
  Alcotest.(check bool) "different configs differ" false (C.equal a c)

let test_hash_distinguishes_position () =
  (* Same multiset of edges assigned to different nodes must hash apart
     (probabilistically); check a known tricky pair. *)
  let a = C.of_lists 3 [| [ 1 ]; []; [] |] in
  let b = C.of_lists 3 [| []; [ 2 ]; [] |] in
  Alcotest.(check bool) "not equal" false (C.equal a b);
  Alcotest.(check bool) "hash differs" true (C.hash a <> C.hash b)

let suite =
  [
    Alcotest.test_case "empty config" `Quick test_empty;
    Alcotest.test_case "of_lists sorts" `Quick test_of_lists_sorted;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "with_strategy is persistent" `Quick test_with_strategy_persistent;
    Alcotest.test_case "to_graph carries lengths" `Quick test_to_graph_lengths;
    Alcotest.test_case "of_graph roundtrip" `Quick test_of_graph_roundtrip;
    Alcotest.test_case "spend and feasibility" `Quick test_spend_and_feasible;
    Alcotest.test_case "equality and hash" `Quick test_equal_hash;
    Alcotest.test_case "hash distinguishes position" `Quick test_hash_distinguishes_position;
  ]
