module A = Bbc_group.Abelian
module C = Bbc_group.Cayley
module D = Bbc_graph.Digraph
module Scc = Bbc_graph.Scc
module SM = Bbc_prng.Splitmix

let test_cyclic_arithmetic () =
  let g = A.cyclic 7 in
  Alcotest.(check int) "order" 7 (A.order g);
  Alcotest.(check int) "3 + 5 = 1" 1 (A.add g 3 5);
  Alcotest.(check int) "-3 = 4" 4 (A.neg g 3);
  Alcotest.(check int) "5 - 3 = 2" 2 (A.sub g 5 3)

let test_product_coords () =
  let g = A.create [ 3; 4 ] in
  Alcotest.(check int) "order" 12 (A.order g);
  Alcotest.(check int) "rank" 2 (A.rank g);
  let x = A.of_coords g [ 2; 3 ] in
  Alcotest.(check (list int)) "roundtrip" [ 2; 3 ] (A.to_coords g x);
  let y = A.of_coords g [ 1; 2 ] in
  Alcotest.(check (list int)) "componentwise add" [ 0; 1 ] (A.to_coords g (A.add g x y))

let test_of_coords_reduces () =
  let g = A.create [ 3; 4 ] in
  Alcotest.(check (list int)) "mod reduction" [ 1; 3 ]
    (A.to_coords g (A.of_coords g [ 4; -1 ]))

let test_identity_and_order () =
  let g = A.boolean_cube 3 in
  Alcotest.(check int) "order 8" 8 (A.order g);
  Alcotest.(check int) "identity" 0 (A.identity g);
  let x = A.of_coords g [ 1; 0; 1 ] in
  Alcotest.(check int) "involution" 2 (A.element_order g x);
  Alcotest.(check int) "identity order" 1 (A.element_order g (A.identity g))

let test_element_order_cyclic () =
  let g = A.cyclic 12 in
  Alcotest.(check int) "order of 4 in Z12" 3 (A.element_order g 4);
  Alcotest.(check int) "order of 5 in Z12" 12 (A.element_order g 5)

let test_group_axioms_sampled () =
  let g = A.create [ 4; 3; 2 ] in
  let rng = SM.create 3 in
  for _ = 1 to 200 do
    let x = SM.int rng 24 and y = SM.int rng 24 and z = SM.int rng 24 in
    Alcotest.(check int) "commutative" (A.add g x y) (A.add g y x);
    Alcotest.(check int) "associative" (A.add g (A.add g x y) z) (A.add g x (A.add g y z));
    Alcotest.(check int) "inverse" (A.identity g) (A.add g x (A.neg g x))
  done

let test_circulant_structure () =
  let c = C.circulant ~n:10 ~offsets:[ 1; 3 ] in
  Alcotest.(check int) "degree" 2 (C.degree c);
  Alcotest.(check int) "edges" 20 (D.edge_count c.graph);
  Alcotest.(check bool) "x -> x+1" true (D.mem_edge c.graph 4 5);
  Alcotest.(check bool) "x -> x+3" true (D.mem_edge c.graph 8 1);
  Alcotest.(check bool) "strongly connected" true (Scc.is_strongly_connected c.graph)

let test_circulant_negative_offset () =
  let c = C.circulant ~n:10 ~offsets:[ -1 ] in
  Alcotest.(check bool) "x -> x-1" true (D.mem_edge c.graph 0 9)

let test_identity_generator_rejected () =
  Alcotest.(check bool) "offset 0 rejected" true
    (try
       ignore (C.circulant ~n:5 ~offsets:[ 5 ]);
       false
     with Invalid_argument _ -> true)

let test_duplicate_generator_rejected () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (C.circulant ~n:7 ~offsets:[ 2; 9 ]);
       false
     with Invalid_argument _ -> true)

let test_hypercube () =
  let c = C.hypercube 4 in
  Alcotest.(check int) "n = 16" 16 (D.n c.graph);
  Alcotest.(check int) "degree 4" 4 (C.degree c);
  (* Vertex 0 is adjacent to the 4 unit vectors. *)
  let group = c.group in
  List.iteri
    (fun i _ ->
      let unit = A.of_coords group (List.init 4 (fun j -> if i = j then 1 else 0)) in
      Alcotest.(check bool) "unit edge" true (D.mem_edge c.graph 0 unit))
    (List.init 4 Fun.id);
  Alcotest.(check bool) "strongly connected" true (Scc.is_strongly_connected c.graph)

let test_torus () =
  let c = C.torus 3 4 in
  Alcotest.(check int) "n" 12 (D.n c.graph);
  Alcotest.(check int) "degree" 2 (C.degree c);
  Alcotest.(check bool) "strongly connected" true (Scc.is_strongly_connected c.graph)

let test_vertex_transitivity () =
  (* Cayley graphs are vertex-transitive: every out-neighborhood is the
     translate of the generator set. *)
  let c = C.circulant ~n:12 ~offsets:[ 2; 5; 7 ] in
  let g = c.group in
  List.iter
    (fun x ->
      List.iter
        (fun a ->
          Alcotest.(check bool) "edge by translation" true
            (D.mem_edge c.graph x (A.add g x a)))
        c.generators)
    (A.elements g)

let test_random_circulant () =
  let rng = SM.create 6 in
  let c = C.random_circulant rng ~n:20 ~k:4 in
  Alcotest.(check int) "degree" 4 (C.degree c);
  List.iter
    (fun a -> Alcotest.(check bool) "non-identity" true (a <> 0))
    c.generators

let suite =
  [
    Alcotest.test_case "cyclic arithmetic" `Quick test_cyclic_arithmetic;
    Alcotest.test_case "product coordinates" `Quick test_product_coords;
    Alcotest.test_case "coordinate reduction" `Quick test_of_coords_reduces;
    Alcotest.test_case "identity and order" `Quick test_identity_and_order;
    Alcotest.test_case "element order in Z12" `Quick test_element_order_cyclic;
    Alcotest.test_case "group axioms (sampled)" `Quick test_group_axioms_sampled;
    Alcotest.test_case "circulant structure" `Quick test_circulant_structure;
    Alcotest.test_case "negative offsets" `Quick test_circulant_negative_offset;
    Alcotest.test_case "identity generator rejected" `Quick test_identity_generator_rejected;
    Alcotest.test_case "duplicate generator rejected" `Quick test_duplicate_generator_rejected;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "vertex transitivity" `Quick test_vertex_transitivity;
    Alcotest.test_case "random circulant" `Quick test_random_circulant;
  ]
