module SM = Bbc_prng.Splitmix

let test_determinism () =
  let a = SM.create 42 and b = SM.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (SM.next_int64 a) (SM.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = SM.create 1 and b = SM.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (List.init 4 (fun _ -> SM.next_int64 a) = List.init 4 (fun _ -> SM.next_int64 b))

let test_copy_independent () =
  let a = SM.create 7 in
  ignore (SM.next_int64 a);
  let b = SM.copy a in
  Alcotest.(check int64) "copy continues identically" (SM.next_int64 a) (SM.next_int64 b);
  ignore (SM.next_int64 a);
  (* advancing a does not advance b *)
  let xa = SM.next_int64 a and xb = SM.next_int64 b in
  Alcotest.(check bool) "streams now offset" true (xa <> xb)

let test_split_independent () =
  let a = SM.create 9 in
  let b = SM.split a in
  let xs = List.init 8 (fun _ -> SM.next_int64 a) in
  let ys = List.init 8 (fun _ -> SM.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = SM.create 3 in
  for _ = 1 to 1000 do
    let x = SM.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_int_covers_range () =
  let rng = SM.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(SM.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let rng = SM.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (SM.int rng 0))

let test_int_in_range () =
  let rng = SM.create 11 in
  for _ = 1 to 200 do
    let x = SM.int_in_range rng ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in [-3,4]" true (x >= -3 && x <= 4)
  done

let test_float_bounds () =
  let rng = SM.create 13 in
  for _ = 1 to 1000 do
    let x = SM.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0. && x < 2.5)
  done

let test_bool_balance () =
  let rng = SM.create 17 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if SM.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let test_shuffle_permutation () =
  let rng = SM.create 19 in
  let a = Array.init 20 Fun.id in
  SM.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = SM.create 23 in
  for _ = 1 to 100 do
    let s = SM.sample_without_replacement rng 5 12 in
    Alcotest.(check int) "five elements" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 12)) s
  done

let test_sample_full () =
  let rng = SM.create 29 in
  let s = SM.sample_without_replacement rng 6 6 in
  Alcotest.(check (list int)) "all of [0,6)" [ 0; 1; 2; 3; 4; 5 ] s

let test_choose () =
  let rng = SM.create 31 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (SM.choose rng a) a)
  done

let suite =
  [
    Alcotest.test_case "deterministic streams" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "split is independent" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "int rejects zero bound" `Quick test_int_invalid;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample the full range" `Quick test_sample_full;
    Alcotest.test_case "choose" `Quick test_choose;
  ]
