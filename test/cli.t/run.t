The CLI verifies named constructions:

  $ bbc_cli verify willows --height 2 --tail 1
  construction: willows (n=22)
  objective:    sum
  social cost:  1518
  stable:       true

  $ bbc_cli verify loop7
  construction: loop7 (n=7)
  objective:    sum
  social cost:  76
  stable:       false
  deviation:    node 0: cost 11 -> 10 via [3 6]

Max objective:

  $ bbc_cli verify ring --nodes 6 --objective max
  construction: ring (n=6)
  objective:    max
  social cost:  30
  stable:       true

Graphviz export:

  $ bbc_cli dot ring --nodes 3
  digraph g {
    0 [label="0"];
    1 [label="1"];
    2 [label="2"];
    0 -> 1;
    1 -> 2;
    2 -> 0;
  }

Save / load round trip:

  $ bbc_cli save willows --height 1 --tail 0 -o w.game --config w.cfg
  wrote w.game (6 nodes)
  wrote w.cfg
  $ bbc_cli load w.game w.cfg
  loaded uniform(n=6, k=2, M=24)
  feasible: true
  social cost (sum): 52
  stable: true
  $ cat w.game
  bbc-instance v1
  n 6
  penalty 24
  uniform 2

Dynamics on a deterministic instance:

  $ bbc_cli dynamics ring --nodes 5
  outcome: converged (rounds=1 steps=5 deviations=0)
  final social cost: 50
  strongly connected: true

Unknown construction:

  $ bbc_cli verify not-a-thing
  bbc: unknown construction "not-a-thing"
  [124]
