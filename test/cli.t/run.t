The CLI verifies named constructions:

  $ bbc_cli verify willows --height 2 --tail 1
  construction: willows (n=22)
  objective:    sum
  social cost:  1518
  stable:       true

  $ bbc_cli verify loop7
  construction: loop7 (n=7)
  objective:    sum
  social cost:  76
  stable:       false
  deviation:    node 0: cost 11 -> 10 via [3 6]

Max objective:

  $ bbc_cli verify ring --nodes 6 --objective max
  construction: ring (n=6)
  objective:    max
  social cost:  30
  stable:       true

Graphviz export:

  $ bbc_cli dot ring --nodes 3
  digraph g {
    0 [label="0"];
    1 [label="1"];
    2 [label="2"];
    0 -> 1;
    1 -> 2;
    2 -> 0;
  }

Save / load round trip:

  $ bbc_cli save willows --height 1 --tail 0 -o w.game --config w.cfg
  wrote w.game (6 nodes)
  wrote w.cfg
  $ bbc_cli load w.game w.cfg
  loaded uniform(n=6, k=2, M=24)
  feasible: true
  social cost (sum): 52
  stable: true
  $ cat w.game
  bbc-instance v1
  n 6
  penalty 24
  uniform 2

Dynamics on a deterministic instance:

  $ bbc_cli dynamics ring --nodes 5
  outcome: converged (rounds=1 steps=5 deviations=0)
  final social cost: 50
  strongly connected: true

Observability: --metrics prints a summary after the command output.
Durations vary run to run, so they are rewritten to <T>; with --jobs 1
every counter is deterministic (the domain pool is never engaged).

  $ bbc_cli dynamics ring --nodes 5 --jobs 1 --metrics \
  >   | sed -E 's/ +[0-9]+(\.[0-9]+)?(ns|us|ms|s)/ <T>/g'
  outcome: converged (rounds=1 steps=5 deviations=0)
  final social cost: 50
  strongly connected: true
  == observability summary ==
  spans (by cumulative time)
    name                                    count      total       mean
    dynamics.run                                1 <T> <T>
    eval.social_cost                            1 <T> <T>
  counters
    apsp.pivots                                     0
    apsp.sweeps                                     0
    best_response.enumerations                      5
    best_response.subsets                          25
    campaign.chunks.written                         0
    campaign.server.reconnects                      0
    campaign.server.retries                         0
    campaign.unit.retries                           0
    campaign.units.completed                        0
    campaign.units.quarantined                      0
    campaign.units.skipped                          0
    dynamics.activations                            5
    dynamics.deviations                             0
    eval.sssp                                       5
    exhaustive.aborted                              0
    exhaustive.profiles                             0
    exhaustive.pruned_prefixes                      0
    fuzz.cases                                      0
    fuzz.discards                                   0
    fuzz.shrink_steps                               0
    incr.analytic_costs                            20
    incr.contexts                                   1
    incr.cost_cache_hits                            0
    incr.cost_cache_misses                          5
    incr.masks                                      0
    incr.moves                                      0
    incr.threshold_rows                             0
    incremental.full_sssp                           5
    incremental.repairs                             0
    incremental.repairs_noop                        0
    pool.runs                                       0
    pool.tasks                                      0
    stability.is_stable                             0
    workspace.acquires                              1
    workspace.row_allocs                            1
  gauges
    pool.workers                                    0
  histograms
    name                                    count       mean      p~max
    incremental.repair_touched                  0          -          -
    pool.wait_ns                                0          -          -

The exhaustive search subcommand with metrics (111 profiles is the
pruned count for a 4-node ring enumeration):

  $ bbc_cli search ring --nodes 4 --jobs 1 --metrics \
  >   | sed -E 's/ +[0-9]+(\.[0-9]+)?(ns|us|ms|s)/ <T>/g'
  construction: ring (n=4)
  objective:         sum
  profiles examined: 111
  equilibria found:  1
  search complete:   false
  first equilibrium social cost: 24
  == observability summary ==
  spans (by cumulative time)
    name                                    count      total       mean
    exhaustive.search                           1 <T> <T>
    eval.social_cost                            1 <T> <T>
  counters
    apsp.pivots                                     0
    apsp.sweeps                                     0
    best_response.enumerations                    137
    best_response.subsets                         336
    campaign.chunks.written                         0
    campaign.server.reconnects                      0
    campaign.server.retries                         0
    campaign.unit.retries                           0
    campaign.units.completed                        0
    campaign.units.quarantined                      0
    campaign.units.skipped                          0
    dynamics.activations                            0
    dynamics.deviations                             0
    eval.sssp                                       4
    exhaustive.aborted                              0
    exhaustive.profiles                           111
    exhaustive.pruned_prefixes                      0
    fuzz.cases                                      0
    fuzz.discards                                   0
    fuzz.shrink_steps                               0
    incr.analytic_costs                           199
    incr.contexts                                   1
    incr.cost_cache_hits                           87
    incr.cost_cache_misses                         50
    incr.masks                                      0
    incr.moves                                    144
    incr.threshold_rows                             0
    incremental.full_sssp                           4
    incremental.repairs                           190
    incremental.repairs_noop                      216
    pool.runs                                       0
    pool.tasks                                      0
    stability.is_stable                           111
    workspace.acquires                              1
    workspace.row_allocs                            1
  gauges
    pool.workers                                    0
  histograms
    name                                    count       mean      p~max
    incremental.repair_touched                190 <T> <T>
    pool.wait_ns                                0          -          -

--trace-out writes a JSONL event stream.  The text --trace and the
JSONL sink render the same activation events; the outcome event
reconstructs the CLI summary line:

  $ bbc_cli dynamics loop7 --jobs 1 --trace --trace-out t.jsonl
    step    0 (round   0): node   0 -> [3 6] cost 11 -> 10
    step    1 (round   0): node   1 -> [0 4] cost 11 -> 10
    step    3 (round   0): node   3 -> [1 6] cost 11 -> 10
    step    7 (round   1): node   0 -> [3 4] cost 11 -> 10
    step    8 (round   1): node   1 -> [0 6] cost 11 -> 10
    step   10 (round   1): node   3 -> [1 4] cost 11 -> 10
  outcome: cycled (period 2 rounds, rounds=2 steps=14 deviations=6)
  final social cost: 76
  strongly connected: true
  $ grep -c '"name":"dynamics.activation"' t.jsonl
  6
  $ grep '"name":"dynamics.outcome"' t.jsonl | sed -E 's/.*"attrs"://; s/\}$//'
  {"outcome":"cycled","converged":false,"rounds":2,"steps":14,"deviations":6,"period":2}

Search traces carry the span plus a snapshot of every counter:

  $ bbc_cli search ring --nodes 4 --jobs 1 --trace-out s.jsonl > /dev/null
  $ grep -c '"kind":"span_open"' s.jsonl
  2
  $ grep '"name":"exhaustive.profiles"' s.jsonl | sed -E 's/.*"attrs"://; s/\}$//'
  {"value":111}

Unknown construction:

  $ bbc_cli verify not-a-thing
  bbc: unknown construction "not-a-thing"
  [124]

Format conversion: text and JSON are both self-describing, so convert
auto-detects kind and input format and re-emits a normalized document:

  $ bbc_cli save ring --nodes 4 -o r.game
  wrote r.game (4 nodes)
  $ bbc_cli convert r.game
  {"type":"bbc-instance","version":1,"n":4,"penalty":16,"uniform_k":1}
  $ bbc_cli convert r.game --to json -o r.json
  wrote r.json
  $ bbc_cli convert r.json --to text
  bbc-instance v1
  n 4
  penalty 16
  uniform 1
  $ echo nonsense > bad.txt
  $ bbc_cli convert bad.txt
  bbc: bad.txt: not an instance (bad header "nonsense") nor a configuration (bad header "nonsense")
  [124]

The analysis service over stdio (the daemon normally listens on a Unix
socket; --stdio serves one implicit connection, which makes the
protocol cram-testable).  With --jobs 1 the scheduler is fully
deterministic: responses in admission order, one batch per queued
request, deterministic session ids and stats:

  $ bbc_cli serve --stdio --jobs 1 <<'EOF'
  > {"id":"1","method":"ping","params":{}}
  > {"id":"2","method":"gen","params":{"name":"ring","n":6}}
  > {"id":"3","method":"cost","params":{"session":"s1","node":0}}
  > {"id":"4","method":"stable","params":{"session":"s1"}}
  > {"id":"5","method":"step_dynamics","params":{"session":"s1","steps":12}}
  > {"id":"6","method":"cost","params":{"session":"s1"}}
  > {"id":"7","method":"oops","params":{}}
  > {"id":"8","method":"cost","params":{"session":"nope"}}
  > {"id":"9","method":"stats","params":{}}
  > EOF
  {"id":"1","ok":{"pong":true}}
  {"id":"2","ok":{"session":"s1","n":6,"feasible":true,"incremental":true}}
  {"id":"3","ok":{"node":0,"cost":15}}
  {"id":"4","ok":{"stable":true,"feasible":true}}
  {"id":"5","ok":{"steps":6,"index":6,"round":1,"deviations":0,"converged":true}}
  {"id":"6","ok":{"type":"bbc-costs","objective":"sum","costs":[15,15,15,15,15,15],"social":90}}
  {"id":"7","error":{"code":"unknown_method","message":"unknown method \"oops\""}}
  {"id":"8","error":{"code":"unknown_session","message":"no session \"nope\""}}
  {"id":"9","ok":{"sessions":1,"queue_depth":0,"served":{"cost":3,"gen":1,"ping":1,"stable":1,"step_dynamics":1},"errors":1,"timeouts":0,"overloaded":0,"rejected":1,"batches":8}}

Listener flags are validated before anything binds: serve needs exactly
one transport family (--stdio, or any mix of --socket/--tcp), --workers
forks processes so it is incompatible with in-process --stdio, and a
malformed --tcp spec is rejected up front:

  $ bbc_cli serve
  bbc: a listener is required: --socket PATH, --tcp HOST:PORT, or --stdio
  Usage: bbc serve [OPTION]…
  Try 'bbc serve --help' or 'bbc --help' for more information.
  [124]
  $ bbc_cli serve --stdio --tcp 127.0.0.1:0
  bbc: --stdio is mutually exclusive with --socket/--tcp
  Usage: bbc serve [OPTION]…
  Try 'bbc serve --help' or 'bbc --help' for more information.
  [124]
  $ bbc_cli serve --stdio --workers 2
  bbc: --stdio serves in-process; --workers requires a socket or TCP listener
  Usage: bbc serve [OPTION]…
  Try 'bbc serve --help' or 'bbc --help' for more information.
  [124]
  $ bbc_cli serve --tcp nonsense
  bbc: --tcp: invalid TCP spec "nonsense" (expected HOST:PORT)
  [124]
  $ bbc_cli serve --socket srv.sock --workers 0
  bbc: --workers must be >= 1
  Usage: bbc serve [OPTION]…
  Try 'bbc serve --help' or 'bbc --help' for more information.
  [124]

The large-n path: stream a family straight into a CSR snapshot and
estimate the social cost from landmark sweeps.  With landmarks >= n the
estimator degenerates to the exact sweep; --jobs 1 pins the bound's
float accumulation order.

  $ bbc_cli bigbench ring -n 40 -k 1 --landmarks 40
  family:    ring (n=40, k=1, seed=1)
  edges:     40
  landmarks: 40 of 40
  social cost (sum): 31200 (exact)

  $ bbc_cli bigbench random -n 200 -k 2 --seed 5 --landmarks 150 --jobs 1
  family:    random (n=200, k=2, seed=5)
  edges:     400
  landmarks: 150 of 200
  social cost (sum): 8738981.3 +- 37589.2 (estimated)

Sampled best-response rounds ride along after the estimate (the walk is
replayable from the seeds; every adopted deviation is a genuine strict
improvement):

  $ bbc_cli bigbench tree -n 100 -k 2 --landmarks 100 --rounds 2 --sample 3
  family:    tree (n=100, k=2, seed=1)
  edges:     99
  landmarks: 100 of 100
  social cost (sum): 3769479 (exact)
  dynamics:  exhausted (rounds=2 steps=200 deviations=129)
  final social cost: 171568 (exact)

Unknown families are rejected with the catalog's vocabulary:

  $ bbc_cli bigbench nosuch -n 10
  bbc: unknown streaming family "nosuch"
  [124]

Differential fuzzing: `bbc fuzz` drives the generator/shrinker suites
over every engine pair.  Same seed, same budget => byte-identical
output (property order, case counts, and any counterexample included):

  $ bbc_cli fuzz --suite csr --seed 3 --count 5 > f1.txt
  $ bbc_cli fuzz --suite csr --seed 3 --count 5 > f2.txt
  $ diff f1.txt f2.txt
  $ cat f1.txt
  suite csr
    paths_vs_csr         5 cases, 0 discards: ok
    apsp_vs_floyd        5 cases, 0 discards: ok
    ban_vs_skip          5 cases, 0 discards: ok
    int32_rows           5 cases, 0 discards: ok
  fuzz: 4 properties, 20 cases, 0 discards, 0 failures

The "selfcheck" suite fuzzes a deliberately broken oracle (it drops
node 0 from the social cost), so it must fail, shrink the mismatch to
a minimal instance, and print the counterexample as loadable JSON plus
a replay line:

  $ bbc_cli fuzz --suite selfcheck --seed 1 --count 5 --max-shrink-steps 100
  suite selfcheck
    planted_social_cost  FAIL at case 0 (4 shrink steps)
      mismatch: social cost: reference 16, test oracle 8
      shrunk instance n = 2
      instance: {"type":"bbc-instance","version":1,"n":2,"penalty":8,"uniform_k":1}
      config: {"type":"bbc-config","version":1,"n":2,"strategies":[[],[]]}
      replay: bbc fuzz --suite selfcheck --seed 1 --count 5
  fuzz: 1 properties, 1 cases, 0 discards, 1 failures
  bbc: fuzzing found mismatches
  [124]

The printed counterexample round-trips through `bbc convert` — the
shrunk instance is a real document, not just a log line:

  $ bbc_cli fuzz --suite selfcheck --seed 1 --count 5 --max-shrink-steps 100 > self.txt 2>/dev/null
  [124]
  $ sed -n 's/^ *instance: //p' self.txt > ce.json
  $ bbc_cli convert ce.json --to text
  bbc-instance v1
  n 2
  penalty 8
  uniform 1
  $ bbc_cli convert ce.json
  {"type":"bbc-instance","version":1,"n":2,"penalty":8,"uniform_k":1}

Unknown suites are rejected with the known vocabulary:

  $ bbc_cli fuzz --suite nosuch
  bbc: unknown suite "nosuch" (expected all, csr, incr, br, server, campaign, selfcheck)
  [124]

The experiment id range is derived from the registry, so the error
message stays honest as experiments are added:

  $ bbc_cli experiment e99
  bbc: unknown experiment id; use e1..e15
  [124]

Campaigns: a JSON spec expands to a deterministic Monte-Carlo grid,
checkpointed to the --out directory.  The report is a pure function of
the spec — reruns, resumes and re-reports all render the same bytes:

  $ cat > tiny.json <<'SPEC'
  > {"type":"bbc-campaign","name":"ring-sweep","seed":5,"seeds_per_point":3,
  >  "max_rounds":50,
  >  "points":[{"generator":{"kind":"catalog","name":"ring"},"n":6,"k":1}],
  >  "inits":["empty"],"schedulers":["round-robin"]}
  > SPEC
  $ bbc_cli campaign run --spec tiny.json --out camp
  campaign: ring-sweep
  units:    3 total, 0 skipped, 3 executed, 0 quarantined
  report:   camp/report.json
  $ cat camp/report.json
  {"type":"bbc-campaign-report","version":1,"name":"ring-sweep","units":3,"completed":3,"quarantined":0,"cells":[{"label":"catalog:ring(n=6,k=1,h=2,l=3)/empty/round-robin/exact/sum","runs":3,"failed":0,"converged":3,"cycled":0,"exhausted":0,"equilibrium_rate":1.0,"strongly_connected":3,"rounds_mean":3.0,"rounds_log2_hist":[0,3],"steps_mean":18.0,"deviations_mean":8.0,"social_cost":{"mean":90.0,"ci95":0.0,"min":90,"max":90}}]}

Resuming a finished campaign skips every unit; `report` recomputes the
same bytes from the checkpoints alone:

  $ bbc_cli campaign resume --out camp
  campaign: ring-sweep
  units:    3 total, 3 skipped, 0 executed, 0 quarantined
  report:   camp/report.json
  $ bbc_cli campaign report --out camp | cmp - camp/report.json

A campaign directory is bound to its spec — running a different spec
into it is refused:

  $ sed 's/"seed":5/"seed":6/' tiny.json > other.json
  $ bbc_cli campaign run --spec other.json --out camp
  bbc: camp/spec.json: campaign directory was started from a different spec; use a fresh --out
  [124]

Invalid specs are rejected with a decode error:

  $ echo '{"type":"bbc-campaign","seeds_per_point":0,"points":[]}' > bad.json
  $ bbc_cli campaign run --spec bad.json --out camp2
  bbc: campaign: points must be non-empty
  [124]
