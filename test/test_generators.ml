module D = Bbc_graph.Digraph
module G = Bbc_graph.Generators
module S = Bbc_graph.Scc
module SM = Bbc_prng.Splitmix

let test_ring () =
  let g = G.directed_ring 5 in
  Alcotest.(check int) "edges" 5 (D.edge_count g);
  Alcotest.(check bool) "strongly connected" true (S.is_strongly_connected g);
  for v = 0 to 4 do
    Alcotest.(check int) "out degree" 1 (D.out_degree g v)
  done

let test_path () =
  let g = G.directed_path 5 in
  Alcotest.(check int) "edges" 4 (D.edge_count g);
  Alcotest.(check int) "last node degree" 0 (D.out_degree g 4)

let test_complete () =
  let g = G.complete 4 in
  Alcotest.(check int) "edges" 12 (D.edge_count g)

let test_tree_sizes () =
  Alcotest.(check int) "binary height 3" 15 (G.k_ary_tree_size ~k:2 ~height:3);
  Alcotest.(check int) "ternary height 2" 13 (G.k_ary_tree_size ~k:3 ~height:2);
  Alcotest.(check int) "unary" 5 (G.k_ary_tree_size ~k:1 ~height:4);
  Alcotest.(check int) "height zero" 1 (G.k_ary_tree_size ~k:7 ~height:0)

let test_tree_structure () =
  let g = G.k_ary_tree ~k:2 ~height:3 in
  Alcotest.(check int) "n" 15 (D.n g);
  Alcotest.(check int) "edges = n - 1" 14 (D.edge_count g);
  (* Internal nodes have k children, leaves none. *)
  for v = 0 to 6 do
    Alcotest.(check int) "internal degree" 2 (D.out_degree g v)
  done;
  for v = 7 to 14 do
    Alcotest.(check int) "leaf degree" 0 (D.out_degree g v)
  done;
  (* Every non-root is reachable from the root. *)
  Alcotest.(check int) "root reaches all" 15 (Bbc_graph.Traversal.reach g 0)

let test_random_k_out () =
  let rng = SM.create 5 in
  let g = G.random_k_out rng ~n:40 ~k:3 in
  for v = 0 to 39 do
    Alcotest.(check int) "degree k" 3 (D.out_degree g v);
    Alcotest.(check bool) "no self loop" false (D.mem_edge g v v)
  done

let test_random_k_out_determinism () =
  let g1 = G.random_k_out (SM.create 8) ~n:20 ~k:2 in
  let g2 = G.random_k_out (SM.create 8) ~n:20 ~k:2 in
  Alcotest.(check bool) "same seed, same graph" true (D.equal g1 g2)

let test_random_k_out_full () =
  let rng = SM.create 9 in
  let g = G.random_k_out rng ~n:5 ~k:4 in
  Alcotest.(check int) "complete" 20 (D.edge_count g)

let test_gnp_extremes () =
  let rng = SM.create 10 in
  let empty = G.gnp rng ~n:10 ~p:0.0 in
  Alcotest.(check int) "p=0 empty" 0 (D.edge_count empty);
  let full = G.gnp rng ~n:10 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 90 (D.edge_count full)

let test_gnp_density () =
  let rng = SM.create 11 in
  let g = G.gnp rng ~n:50 ~p:0.2 in
  let m = D.edge_count g in
  (* Expected 490; allow wide slack. *)
  Alcotest.(check bool) "plausible density" true (m > 350 && m < 650)

let suite =
  [
    Alcotest.test_case "directed ring" `Quick test_ring;
    Alcotest.test_case "directed path" `Quick test_path;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "k-ary tree sizes" `Quick test_tree_sizes;
    Alcotest.test_case "k-ary tree structure" `Quick test_tree_structure;
    Alcotest.test_case "random k-out degrees" `Quick test_random_k_out;
    Alcotest.test_case "random k-out determinism" `Quick test_random_k_out_determinism;
    Alcotest.test_case "random k-out complete" `Quick test_random_k_out_full;
    Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
    Alcotest.test_case "gnp density" `Quick test_gnp_density;
  ]
