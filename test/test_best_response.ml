module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval
module BR = Bbc.Best_response

(* Reference implementation: enumerate all feasible strategies and
   evaluate each by rebuilding the graph.  Quadratically slower than the
   production d_{-u} decomposition; used to cross-check it. *)
let naive_best ?objective instance config u =
  List.fold_left
    (fun (best_s, best_c) s ->
      let c = E.node_cost ?objective instance (C.with_strategy config u s) u in
      if c < best_c then (s, c) else (best_s, best_c))
    ([], max_int)
    (Bbc.Exhaustive.all_strategies instance u)

let test_candidate_targets () =
  let inst = I.uniform ~n:5 ~k:2 in
  Alcotest.(check (list int)) "all but self" [ 0; 1; 3; 4 ] (BR.candidate_targets inst 2)

let test_candidate_targets_costly () =
  let w = Array.make_matrix 3 3 1 in
  let cost = [| [| 0; 9; 1 |]; [| 1; 0; 1 |]; [| 1; 1; 0 |] |] in
  let ones = Array.make_matrix 3 3 1 in
  let inst = I.general ~weight:w ~cost ~length:ones ~budget:[| 2; 2; 2 |] () in
  Alcotest.(check (list int)) "unaffordable excluded" [ 2 ] (BR.candidate_targets inst 0)

let test_exact_on_ring () =
  (* In a (5,1) ring, each node's current strategy is already optimal. *)
  let inst = I.uniform ~n:5 ~k:1 in
  let c = C.of_lists 5 (Array.init 5 (fun v -> [ (v + 1) mod 5 ])) in
  let r = BR.exact inst c 0 in
  Alcotest.(check int) "optimal cost" 10 r.cost;
  Alcotest.(check (list int)) "keeps the ring link" [ 1 ] r.strategy

let test_exact_picks_shortcut () =
  (* Path 0->1->2->3 with k=1: node 0's best response is to link 1
     (linking 2 or 3 disconnects earlier nodes? no weights... linking 1
     reaches 1,2,3 at 1,2,3 = 6; linking 2 reaches 2,3 = 1,2 but 1
     unreachable -> M+3). *)
  let inst = I.uniform ~n:4 ~k:1 in
  let c = C.of_lists 4 [| [ 3 ]; [ 2 ]; [ 3 ]; [] |] in
  let r = BR.exact inst c 0 in
  Alcotest.(check (list int)) "link the chain head" [ 1 ] r.strategy;
  Alcotest.(check int) "cost" 6 r.cost

let test_exact_matches_naive_uniform () =
  let rng = Bbc_prng.Splitmix.create 55 in
  for _ = 1 to 25 do
    let n = 7 in
    let inst = I.uniform ~n ~k:2 in
    let g = Bbc_graph.Generators.random_k_out rng ~n ~k:2 in
    let c = C.of_graph g in
    let u = Bbc_prng.Splitmix.int rng n in
    let fast = BR.exact inst c u in
    let _, slow_cost = naive_best inst c u in
    Alcotest.(check int) "optimal values agree" slow_cost fast.cost
  done

let test_exact_matches_naive_nonuniform () =
  let rng = Bbc_prng.Splitmix.create 56 in
  for _ = 1 to 15 do
    let n = 6 in
    let weight =
      Array.init n (fun u ->
          Array.init n (fun v -> if u = v then 0 else Bbc_prng.Splitmix.int rng 4))
    in
    let inst = I.of_weights ~k:1 weight in
    let g = Bbc_graph.Generators.random_k_out rng ~n ~k:1 in
    let c = C.of_graph g in
    for u = 0 to n - 1 do
      let fast = BR.exact inst c u in
      let _, slow_cost = naive_best inst c u in
      Alcotest.(check int) "optimal values agree" slow_cost fast.cost
    done
  done

let test_exact_matches_naive_max () =
  let rng = Bbc_prng.Splitmix.create 57 in
  for _ = 1 to 15 do
    let n = 6 in
    let inst = I.uniform ~n ~k:2 in
    let g = Bbc_graph.Generators.random_k_out rng ~n ~k:2 in
    let c = C.of_graph g in
    let u = Bbc_prng.Splitmix.int rng n in
    let fast = BR.exact ~objective:Max inst c u in
    let _, slow_cost = naive_best ~objective:Bbc.Objective.Max inst c u in
    Alcotest.(check int) "max objective agrees" slow_cost fast.cost
  done

let test_exact_cost_is_achieved () =
  let rng = Bbc_prng.Splitmix.create 58 in
  for _ = 1 to 20 do
    let n = 8 in
    let inst = I.uniform ~n ~k:2 in
    let c = C.of_graph (Bbc_graph.Generators.random_k_out rng ~n ~k:2) in
    let u = Bbc_prng.Splitmix.int rng n in
    let r = BR.exact inst c u in
    let realized = E.node_cost inst (C.with_strategy c u r.strategy) u in
    Alcotest.(check int) "reported = realized" r.cost realized
  done

let test_improving_none_at_optimum () =
  let inst = I.uniform ~n:4 ~k:3 in
  (* Complete graph: nobody can improve. *)
  let c = C.of_lists 4 (Array.init 4 (fun v -> List.filter (fun x -> x <> v) [ 0; 1; 2; 3 ])) in
  for u = 0 to 3 do
    Alcotest.(check bool) "no improvement" true (BR.improving inst c u = None)
  done

let test_improving_finds_strict () =
  let inst = I.uniform ~n:4 ~k:1 in
  let c = C.of_lists 4 [| []; [ 2 ]; [ 3 ]; [ 1 ] |] in
  match BR.improving inst c 0 with
  | Some r ->
      Alcotest.(check bool) "strictly better" true
        (r.cost < E.node_cost inst c 0)
  | None -> Alcotest.fail "node 0 should improve from the empty strategy"

let test_budget_respected () =
  let w = Array.make_matrix 4 4 1 in
  let cost = [| [| 0; 2; 2; 2 |]; [| 1; 0; 1; 1 |]; [| 1; 1; 0; 1 |]; [| 1; 1; 1; 0 |] |] in
  let ones = Array.make_matrix 4 4 1 in
  let inst = I.general ~weight:w ~cost ~length:ones ~budget:[| 3; 3; 3; 3 |] () in
  let c = C.empty 4 in
  let r = BR.exact inst c 0 in
  (* Node 0 can afford only one link (each costs 2, budget 3). *)
  Alcotest.(check int) "single link" 1 (List.length r.strategy)

let test_greedy_reasonable () =
  let rng = Bbc_prng.Splitmix.create 60 in
  for _ = 1 to 10 do
    let n = 8 in
    let inst = I.uniform ~n ~k:2 in
    let c = C.of_graph (Bbc_graph.Generators.random_k_out rng ~n ~k:2) in
    let u = Bbc_prng.Splitmix.int rng n in
    let g = BR.greedy inst c u in
    let e = BR.exact inst c u in
    Alcotest.(check bool) "greedy >= exact" true (g.cost >= e.cost);
    Alcotest.(check bool) "greedy is realizable" true
      (g.cost = E.node_cost inst (C.with_strategy c u g.strategy) u)
  done

let suite =
  [
    Alcotest.test_case "candidate targets" `Quick test_candidate_targets;
    Alcotest.test_case "candidate targets respect cost" `Quick test_candidate_targets_costly;
    Alcotest.test_case "exact on ring" `Quick test_exact_on_ring;
    Alcotest.test_case "exact picks chain head" `Quick test_exact_picks_shortcut;
    Alcotest.test_case "exact = naive (uniform)" `Quick test_exact_matches_naive_uniform;
    Alcotest.test_case "exact = naive (nonuniform)" `Quick test_exact_matches_naive_nonuniform;
    Alcotest.test_case "exact = naive (max)" `Quick test_exact_matches_naive_max;
    Alcotest.test_case "reported cost is realized" `Quick test_exact_cost_is_achieved;
    Alcotest.test_case "improving: none at optimum" `Quick test_improving_none_at_optimum;
    Alcotest.test_case "improving: strict improvement" `Quick test_improving_finds_strict;
    Alcotest.test_case "budget respected" `Quick test_budget_respected;
    Alcotest.test_case "greedy sanity" `Quick test_greedy_reasonable;
  ]


let test_all_best () =
  let rng = Bbc_prng.Splitmix.create 61 in
  for _ = 1 to 10 do
    let n = 7 in
    let inst = I.uniform ~n ~k:2 in
    let c = C.of_graph (Bbc_graph.Generators.random_k_out rng ~n ~k:2) in
    let u = Bbc_prng.Splitmix.int rng n in
    let e = BR.exact inst c u in
    let all = BR.all_best inst c u in
    Alcotest.(check bool) "exact's strategy among all_best" true
      (List.exists (fun (r : BR.result) -> r.strategy = e.strategy) all);
    List.iter
      (fun (r : BR.result) ->
        Alcotest.(check int) "same optimal cost" e.cost r.cost;
        Alcotest.(check int) "realized" r.cost
          (E.node_cost inst (C.with_strategy c u r.strategy) u))
      all;
    Alcotest.(check int) "no duplicates" (List.length all)
      (List.length (List.sort_uniq compare (List.map (fun (r : BR.result) -> r.strategy) all)))
  done

let suite = suite @ [ Alcotest.test_case "all_best" `Quick test_all_best ]
