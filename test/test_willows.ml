module W = Bbc.Willows
module I = Bbc.Instance
module C = Bbc.Config

let test_sizes () =
  (* k=2, h=3: tree 15 nodes, 8 leaves. *)
  let p = W.{ k = 2; h = 3; l = 0 } in
  Alcotest.(check int) "tree size" 15 (W.tree_size p);
  Alcotest.(check int) "section" 15 (W.section_size p);
  Alcotest.(check int) "n" 30 (W.size p);
  let p1 = { p with l = 2 } in
  Alcotest.(check int) "with tails" (2 * (15 + (8 * 2))) (W.size p1);
  (* Matches the paper's k=2 formula n = k (2^{h+1} - 1 + 2^h l). *)
  Alcotest.(check int) "paper formula" (2 * (16 - 1 + (8 * 2))) (W.size p1)

let test_restriction () =
  Alcotest.(check bool) "k2 h3 l0 ok" true
    (W.satisfies_paper_restriction { k = 2; h = 3; l = 0 });
  Alcotest.(check bool) "huge tail fails" false
    (W.satisfies_paper_restriction { k = 2; h = 1; l = 50 });
  let lmax = W.max_tail_for ~k:2 ~h:3 in
  Alcotest.(check bool) "max tail positive" true (lmax >= 1);
  Alcotest.(check bool) "max tail is maximal" true
    (W.satisfies_paper_restriction { k = 2; h = 3; l = lmax }
    && not (W.satisfies_paper_restriction { k = 2; h = 3; l = lmax + 1 }))

let test_roots_and_sections () =
  let p = W.{ k = 3; h = 2; l = 1 } in
  let roots = W.roots p in
  Alcotest.(check int) "k roots" 3 (List.length roots);
  List.iteri
    (fun i r ->
      Alcotest.(check int) "root id" (i * W.section_size p) r;
      Alcotest.(check int) "root section" i (W.section_of p r))
    roots

let test_budget_exactly_k () =
  let p = W.{ k = 2; h = 2; l = 3 } in
  let _, config = W.build p in
  for v = 0 to W.size p - 1 do
    Alcotest.(check int) "every node spends k" 2 (C.strategy_size config v)
  done

let test_feasible_and_connected () =
  let p = W.{ k = 3; h = 1; l = 2 } in
  let inst, config = W.build p in
  Alcotest.(check bool) "feasible" true (C.feasible inst config);
  Alcotest.(check bool) "strongly connected" true
    (Bbc_graph.Scc.is_strongly_connected (C.to_graph inst config))

let test_stability_small () =
  (* Lemma 6, verified exactly at several parameter points. *)
  List.iter
    (fun (k, h, l) ->
      let p = W.{ k; h; l } in
      let inst, config = W.build p in
      Alcotest.(check bool)
        (Format.asprintf "%a stable" W.pp_params p)
        true
        (Bbc.Stability.is_stable inst config))
    [ (2, 1, 0); (2, 2, 0); (2, 2, 1); (2, 3, 0); (2, 3, 1); (3, 1, 0) ]

let test_stability_larger () =
  let p = W.{ k = 2; h = 3; l = 2 } in
  let inst, config = W.build p in
  Alcotest.(check bool) "n=62 stable" true (Bbc.Stability.is_stable inst config)

let test_l0_cost_near_optimal () =
  (* The l=0 willows are the PoS Theta(1) witnesses: social cost within a
     small constant of the degree-k lower bound. *)
  let p = W.{ k = 2; h = 3; l = 0 } in
  let inst, config = W.build p in
  let ratio = Bbc.Metrics.anarchy_ratio inst config in
  Alcotest.(check bool) "within 3x of the lower bound" true (ratio < 3.0)

let test_tails_raise_cost () =
  let base = W.{ k = 2; h = 3; l = 0 } in
  let tailed = W.{ k = 2; h = 3; l = 2 } in
  let i0, c0 = W.build base in
  let i1, c1 = W.build tailed in
  let r0 = Bbc.Metrics.anarchy_ratio i0 c0 in
  let r1 = Bbc.Metrics.anarchy_ratio i1 c1 in
  Alcotest.(check bool) "tails increase the anarchy ratio" true (r1 > r0)

let test_fairness_lemma1 () =
  let p = W.{ k = 2; h = 3; l = 1 } in
  let inst, config = W.build p in
  let n = W.size p in
  let f = Bbc.Metrics.fairness inst config in
  Alcotest.(check bool) "spread within Lemma 1" true
    (f.spread <= Bbc.Metrics.lemma1_spread_bound ~n ~k:2)

let test_validation () =
  let expect_invalid p =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (W.build p);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid W.{ k = 1; h = 2; l = 0 };
  expect_invalid W.{ k = 2; h = 0; l = 0 };
  expect_invalid W.{ k = 2; h = 2; l = -1 }

let test_instance_is_uniform () =
  let inst, _ = W.build W.{ k = 2; h = 2; l = 0 } in
  Alcotest.(check bool) "uniform" true (I.is_uniform inst);
  Alcotest.(check (option int)) "k" (Some 2) (I.uniform_k inst)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "paper restriction" `Quick test_restriction;
    Alcotest.test_case "roots and sections" `Quick test_roots_and_sections;
    Alcotest.test_case "budgets fully used" `Quick test_budget_exactly_k;
    Alcotest.test_case "feasible and connected" `Quick test_feasible_and_connected;
    Alcotest.test_case "stability (small sweep)" `Quick test_stability_small;
    Alcotest.test_case "stability n=62" `Slow test_stability_larger;
    Alcotest.test_case "l=0 near-optimal" `Quick test_l0_cost_near_optimal;
    Alcotest.test_case "tails raise cost" `Quick test_tails_raise_cost;
    Alcotest.test_case "fairness within lemma 1" `Quick test_fairness_lemma1;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "uniform instance" `Quick test_instance_is_uniform;
  ]
