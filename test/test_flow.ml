module N = Bbc_flow.Network
module MC = Bbc_flow.Mincost
module MF = Bbc_flow.Maxflow

let feps = Alcotest.float 1e-6

let test_single_arc () =
  let net = N.create 2 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:1.0 ~cost:3.0);
  let r = MC.solve net ~source:0 ~sink:1 ~amount:1.0 in
  Alcotest.check feps "sent" 1.0 r.sent;
  Alcotest.check feps "cost" 3.0 r.cost

let test_capacity_limits () =
  let net = N.create 2 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:0.4 ~cost:1.0);
  let r = MC.solve net ~source:0 ~sink:1 ~amount:1.0 in
  Alcotest.check feps "partial flow" 0.4 r.sent

let test_prefers_cheap_path () =
  (* 0->1 direct cost 10 cap 1; 0->2->1 cost 2+2 cap 0.5 each. *)
  let net = N.create 3 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:1.0 ~cost:10.0);
  ignore (N.add_arc net ~src:0 ~dst:2 ~capacity:0.5 ~cost:2.0);
  ignore (N.add_arc net ~src:2 ~dst:1 ~capacity:0.5 ~cost:2.0);
  let r = MC.solve net ~source:0 ~sink:1 ~amount:1.0 in
  Alcotest.check feps "sent all" 1.0 r.sent;
  (* 0.5 via relay at 4, 0.5 direct at 10. *)
  Alcotest.check feps "split cost" 7.0 r.cost

let test_unit_flow_infeasible () =
  let net = N.create 3 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:1.0 ~cost:1.0);
  Alcotest.(check (option (float 1e-6))) "no route to 2" None
    (MC.min_cost_unit_flow net ~source:0 ~sink:2)

let test_unit_flow_resets () =
  let net = N.create 2 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:1.0 ~cost:2.0);
  let a = MC.min_cost_unit_flow net ~source:0 ~sink:1 in
  let b = MC.min_cost_unit_flow net ~source:0 ~sink:1 in
  Alcotest.(check (option (float 1e-6))) "repeatable" a b;
  Alcotest.(check (option (float 1e-6))) "value" (Some 2.0) b

let test_infinite_capacity () =
  let net = N.create 2 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:infinity ~cost:5.0);
  let r = MC.solve net ~source:0 ~sink:1 ~amount:3.0 in
  Alcotest.check feps "all through" 3.0 r.sent;
  Alcotest.check feps "cost" 15.0 r.cost

let test_negative_residual_cycle_avoided () =
  (* Successive shortest paths keeps optimality: a diamond where greedy
     routing must later re-route through reverse arcs. *)
  let net = N.create 4 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:1.0 ~cost:1.0);
  ignore (N.add_arc net ~src:0 ~dst:2 ~capacity:1.0 ~cost:2.0);
  ignore (N.add_arc net ~src:1 ~dst:3 ~capacity:1.0 ~cost:2.0);
  ignore (N.add_arc net ~src:2 ~dst:3 ~capacity:1.0 ~cost:1.0);
  ignore (N.add_arc net ~src:1 ~dst:2 ~capacity:1.0 ~cost:0.0);
  let r = MC.solve net ~source:0 ~sink:3 ~amount:2.0 in
  Alcotest.check feps "sent" 2.0 r.sent;
  (* Optimal: 0-1-2-3 at 2 and 0-2? cap... verify against exhaustive value 6. *)
  Alcotest.check feps "optimal cost" 6.0 r.cost

let test_maxflow_simple () =
  let net = N.create 4 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:3.0 ~cost:0.0);
  ignore (N.add_arc net ~src:0 ~dst:2 ~capacity:2.0 ~cost:0.0);
  ignore (N.add_arc net ~src:1 ~dst:3 ~capacity:2.0 ~cost:0.0);
  ignore (N.add_arc net ~src:2 ~dst:3 ~capacity:2.0 ~cost:0.0);
  Alcotest.check feps "max flow" 4.0 (MF.solve net ~source:0 ~sink:3)

let test_maxflow_needs_residual () =
  (* Classic example where an augmenting path must undo flow. *)
  let net = N.create 4 in
  ignore (N.add_arc net ~src:0 ~dst:1 ~capacity:1.0 ~cost:0.0);
  ignore (N.add_arc net ~src:0 ~dst:2 ~capacity:1.0 ~cost:0.0);
  ignore (N.add_arc net ~src:1 ~dst:2 ~capacity:1.0 ~cost:0.0);
  ignore (N.add_arc net ~src:1 ~dst:3 ~capacity:1.0 ~cost:0.0);
  ignore (N.add_arc net ~src:2 ~dst:3 ~capacity:1.0 ~cost:0.0);
  Alcotest.check feps "max flow" 2.0 (MF.solve net ~source:0 ~sink:3)

let test_network_flow_accounting () =
  let net = N.create 2 in
  let a = N.add_arc net ~src:0 ~dst:1 ~capacity:2.0 ~cost:1.0 in
  N.push net a 0.75;
  Alcotest.check feps "flow recorded" 0.75 (N.flow net a);
  Alcotest.check feps "residual" 1.25 (N.residual net a);
  N.reset net;
  Alcotest.check feps "reset" 0.0 (N.flow net a)

let test_mincost_equals_maxflow_feasibility () =
  (* If maxflow >= 1, min_cost_unit_flow must succeed, and vice versa. *)
  let rng = Bbc_prng.Splitmix.create 77 in
  for _ = 1 to 20 do
    let n = 6 in
    let build () =
      let net = N.create n in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Bbc_prng.Splitmix.float rng 1.0 < 0.3 then
            ignore
              (N.add_arc net ~src:u ~dst:v
                 ~capacity:(Bbc_prng.Splitmix.float rng 1.0)
                 ~cost:(float_of_int (1 + Bbc_prng.Splitmix.int rng 5)))
        done
      done;
      net
    in
    let net = build () in
    let mf = MF.solve net ~source:0 ~sink:(n - 1) in
    N.reset net;
    let unit = MC.min_cost_unit_flow net ~source:0 ~sink:(n - 1) in
    Alcotest.(check bool) "feasibility agreement" (mf >= 1.0 -. 1e-9)
      (Option.is_some unit)
  done

let suite =
  [
    Alcotest.test_case "single arc" `Quick test_single_arc;
    Alcotest.test_case "capacity limits" `Quick test_capacity_limits;
    Alcotest.test_case "prefers cheap path" `Quick test_prefers_cheap_path;
    Alcotest.test_case "unit flow infeasible" `Quick test_unit_flow_infeasible;
    Alcotest.test_case "unit flow resets" `Quick test_unit_flow_resets;
    Alcotest.test_case "infinite capacity" `Quick test_infinite_capacity;
    Alcotest.test_case "rerouting optimality" `Quick test_negative_residual_cycle_avoided;
    Alcotest.test_case "maxflow simple" `Quick test_maxflow_simple;
    Alcotest.test_case "maxflow residual" `Quick test_maxflow_needs_residual;
    Alcotest.test_case "flow accounting" `Quick test_network_flow_accounting;
    Alcotest.test_case "mincost/maxflow feasibility" `Quick test_mincost_equals_maxflow_feasibility;
  ]
