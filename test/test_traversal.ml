module D = Bbc_graph.Digraph
module T = Bbc_graph.Traversal
module G = Bbc_graph.Generators
module SM = Bbc_prng.Splitmix

let test_reach_on_path () =
  let g = G.directed_path 5 in
  Alcotest.(check int) "head reaches all" 5 (T.reach g 0);
  Alcotest.(check int) "tail reaches itself" 1 (T.reach g 4);
  Alcotest.(check int) "min reach" 1 (T.min_reach g)

let test_reach_on_ring () =
  let g = G.directed_ring 7 in
  for v = 0 to 6 do
    Alcotest.(check int) "everyone reaches all" 7 (T.reach g v)
  done;
  Alcotest.(check int) "min reach" 7 (T.min_reach g)

let test_reachable_set () =
  let g = D.of_unit_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  let s = T.reachable_set g 0 in
  Alcotest.(check (array bool)) "set" [| true; true; true; false; false |] s

let test_reach_vector_matches_reach () =
  let rng = SM.create 21 in
  for _ = 1 to 15 do
    let g = G.gnp rng ~n:20 ~p:0.1 in
    let rv = T.reach_vector g in
    for v = 0 to 19 do
      Alcotest.(check int) "vector = per-vertex" (T.reach g v) rv.(v)
    done
  done

let test_min_reach_empty () =
  Alcotest.(check int) "empty graph" 0 (T.min_reach (D.create 0))

let test_isolated () =
  let g = D.create 3 in
  Alcotest.(check int) "isolated vertex reach" 1 (T.reach g 1)

let suite =
  [
    Alcotest.test_case "reach on a path" `Quick test_reach_on_path;
    Alcotest.test_case "reach on a ring" `Quick test_reach_on_ring;
    Alcotest.test_case "reachable set" `Quick test_reachable_set;
    Alcotest.test_case "reach_vector = reach" `Quick test_reach_vector_matches_reach;
    Alcotest.test_case "empty graph min reach" `Quick test_min_reach_empty;
    Alcotest.test_case "isolated vertices" `Quick test_isolated;
  ]
