module F = Bbc_related.Fabrikant
module C = Bbc.Config

let test_complete_stable_iff_cheap () =
  (* Fabrikant et al.: the complete graph is an equilibrium iff
     alpha <= 1 (dropping a link saves alpha and adds one hop). *)
  List.iter
    (fun (alpha, expect) ->
      let t = F.create ~n:6 ~alpha () in
      Alcotest.(check bool)
        (Printf.sprintf "complete, alpha=%d" alpha)
        expect
        (F.is_stable t (F.complete t)))
    [ (0, true); (1, true); (2, false); (4, false) ]

let test_star_stable_iff_pricey () =
  List.iter
    (fun (alpha, expect) ->
      let t = F.create ~n:6 ~alpha () in
      Alcotest.(check bool)
        (Printf.sprintf "star, alpha=%d" alpha)
        expect
        (F.is_stable t (F.star t)))
    [ (0, false); (1, true); (3, true) ]

let test_costs () =
  (* n=4 star, alpha=2: center pays 3*2 + 3 = 9; each leaf pays
     0 + 1 + 2 + 2 = 5; social = 9 + 15 = 24. *)
  let t = F.create ~n:4 ~alpha:2 () in
  let star = F.star t in
  Alcotest.(check int) "center" 9 (F.node_cost t star 0);
  Alcotest.(check int) "leaf" 5 (F.node_cost t star 2);
  Alcotest.(check int) "social" 24 (F.social_cost t star)

let test_links_are_bidirectional () =
  (* A leaf of the star reaches everyone although it bought nothing. *)
  let t = F.create ~n:5 ~alpha:1 () in
  let c = F.node_cost t (F.star t) 3 in
  Alcotest.(check bool) "no penalty terms" true (c < t.penalty);
  Alcotest.(check int) "1 + 3 * 2" 7 c

let test_best_response_exact () =
  (* From the empty profile, with alpha=1 and n=4, a node's best response
     buys links (disconnection is expensive). *)
  let t = F.create ~n:4 ~alpha:1 () in
  let s, cost = F.best_response t (F.empty t) 0 in
  Alcotest.(check (list int)) "buy everyone" [ 1; 2; 3 ] s;
  Alcotest.(check int) "cost" (3 + 3) cost

let test_dynamics_converges () =
  (* Pure NE exist in this model; round-robin BR finds one quickly. *)
  List.iter
    (fun alpha ->
      let t = F.create ~n:6 ~alpha () in
      match F.run_dynamics t (F.empty t) with
      | Some (eq, _) -> Alcotest.(check bool) "verified" true (F.is_stable t eq)
      | None -> Alcotest.fail "did not converge")
    [ 0; 1; 2; 4 ]

let test_validation () =
  Alcotest.(check bool) "n too small" true
    (try ignore (F.create ~n:1 ~alpha:1 ()); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative alpha" true
    (try ignore (F.create ~n:4 ~alpha:(-1) ()); false with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "complete stable iff alpha <= 1" `Quick test_complete_stable_iff_cheap;
    Alcotest.test_case "star stable iff alpha >= 1" `Quick test_star_stable_iff_pricey;
    Alcotest.test_case "cost arithmetic" `Quick test_costs;
    Alcotest.test_case "links bidirectional" `Quick test_links_are_bidirectional;
    Alcotest.test_case "best response exact" `Quick test_best_response_exact;
    Alcotest.test_case "dynamics converge" `Quick test_dynamics_converges;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
