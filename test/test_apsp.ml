module A = Bbc_graph.Apsp
module D = Bbc_graph.Digraph
module P = Bbc_graph.Paths
module G = Bbc_graph.Generators
module SM = Bbc_prng.Splitmix

let test_matches_dijkstra_random () =
  let rng = SM.create 31 in
  for _ = 1 to 15 do
    let g = G.gnp rng ~n:20 ~p:0.15 in
    (* Randomize lengths to exercise the weighted path. *)
    D.iter_edges g (fun u v _ -> D.add_edge g u v (1 + SM.int rng 5));
    let apsp = A.compute g in
    for u = 0 to 19 do
      let d = P.dijkstra g u in
      for v = 0 to 19 do
        Alcotest.(check int) "apsp = dijkstra" d.(v) (A.distance apsp u v)
      done
    done
  done

let test_diagonal_zero () =
  let g = G.directed_ring 5 in
  let apsp = A.compute g in
  for v = 0 to 4 do
    Alcotest.(check int) "diagonal" 0 (A.distance apsp v v)
  done

let test_unreachable () =
  let g = G.directed_path 4 in
  let apsp = A.compute g in
  Alcotest.(check int) "backwards" P.unreachable (A.distance apsp 3 0)

let test_diameter_agrees () =
  let rng = SM.create 37 in
  for _ = 1 to 10 do
    let g = G.random_k_out rng ~n:15 ~k:2 in
    Alcotest.(check (option int)) "diameter agreement"
      (Bbc_graph.Metrics.diameter g)
      (A.diameter (A.compute g))
  done

let test_eccentricity () =
  let g = G.directed_ring 6 in
  let apsp = A.compute g in
  Alcotest.(check (option int)) "ring eccentricity" (Some 5) (A.eccentricity apsp 2);
  let h = G.directed_path 3 in
  Alcotest.(check (option int)) "tail sees nobody" None
    (A.eccentricity (A.compute h) 2)

let test_parallel_edge_min () =
  (* A longer direct edge must lose to a shorter relay path. *)
  let g = D.of_edges 3 [ (0, 1, 9); (0, 2, 1); (2, 1, 1) ] in
  let apsp = A.compute g in
  Alcotest.(check int) "relay wins" 2 (A.distance apsp 0 1)

let suite =
  [
    Alcotest.test_case "matches dijkstra" `Quick test_matches_dijkstra_random;
    Alcotest.test_case "diagonal zero" `Quick test_diagonal_zero;
    Alcotest.test_case "unreachable" `Quick test_unreachable;
    Alcotest.test_case "diameter agrees" `Quick test_diameter_agrees;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    Alcotest.test_case "relay beats direct" `Quick test_parallel_edge_min;
  ]
