module I = Bbc.Instance
module C = Bbc.Config
module D = Bbc.Dynamics
module Scc = Bbc_graph.Scc

let test_converges_from_empty_small () =
  let inst = I.uniform ~n:5 ~k:1 in
  match D.run ~scheduler:Round_robin ~max_rounds:100 inst (C.empty 5) with
  | Converged (c, stats) ->
      Alcotest.(check bool) "result is a NE" true (Bbc.Stability.is_stable inst c);
      Alcotest.(check bool) "made progress" true (stats.deviations > 0)
  | o -> Alcotest.fail (Format.asprintf "expected convergence, got %a" D.pp_outcome o)

let test_stable_start_converges_immediately () =
  let inst = I.uniform ~n:5 ~k:1 in
  let ring = C.of_lists 5 (Array.init 5 (fun v -> [ (v + 1) mod 5 ])) in
  match D.run ~scheduler:Round_robin ~max_rounds:10 inst ring with
  | Converged (c, stats) ->
      Alcotest.(check bool) "unchanged" true (C.equal c ring);
      Alcotest.(check int) "one silent round" 1 stats.rounds;
      Alcotest.(check int) "no deviations" 0 stats.deviations
  | o -> Alcotest.fail (Format.asprintf "expected convergence, got %a" D.pp_outcome o)

let test_figure4_loop_cycles () =
  let inst, config = Bbc.Constructions.best_response_loop () in
  match D.run ~scheduler:Round_robin ~max_rounds:50 inst config with
  | Cycled { period; _ } -> Alcotest.(check int) "period 2 rounds" 2 period
  | o -> Alcotest.fail (Format.asprintf "expected a cycle, got %a" D.pp_outcome o)

let test_figure4_loop_deviation_count () =
  let inst, config = Bbc.Constructions.best_response_loop () in
  (* Count deviations over the first full period: the paper's loop has 6
     (three nodes moving twice). *)
  let moves = ref [] in
  (match
     D.run
       ~on_step:(fun s -> if s.moved then moves := s.node :: !moves)
       ~scheduler:Round_robin ~max_rounds:50 inst config
   with
  | Cycled _ -> ()
  | o -> Alcotest.fail (Format.asprintf "expected a cycle, got %a" D.pp_outcome o));
  Alcotest.(check (list int)) "six deviations by three nodes"
    [ 0; 1; 3; 0; 1; 3 ] (List.rev !moves)

let test_max_cost_first_converges () =
  let inst = I.uniform ~n:6 ~k:2 in
  let rng = Bbc_prng.Splitmix.create 100 in
  let g = Bbc_graph.Generators.random_k_out rng ~n:6 ~k:2 in
  match D.run ~scheduler:Max_cost_first ~max_rounds:2000 inst (C.of_graph g) with
  | Converged (c, _) ->
      Alcotest.(check bool) "NE" true (Bbc.Stability.is_stable inst c)
  | Cycled _ -> () (* the paper reports such walks may fail to converge *)
  | Exhausted _ -> Alcotest.fail "walk neither converged nor cycled in 2000 steps"

let test_random_order_runs () =
  let inst = I.uniform ~n:6 ~k:1 in
  match D.run ~scheduler:(Random_order 7) ~max_rounds:200 inst (C.empty 6) with
  | Converged (c, _) -> Alcotest.(check bool) "NE" true (Bbc.Stability.is_stable inst c)
  | o -> Alcotest.fail (Format.asprintf "expected convergence, got %a" D.pp_outcome o)

let strongly_connected inst c = Scc.is_strongly_connected (C.to_graph inst c)

let test_strong_connectivity_theorem6 () =
  (* Theorem 6: round-robin reaches strong connectivity within n^2 steps. *)
  let rng = Bbc_prng.Splitmix.create 200 in
  List.iter
    (fun n ->
      for _ = 1 to 3 do
        let inst = I.uniform ~n ~k:1 in
        let g = Bbc_graph.Generators.random_k_out rng ~n ~k:1 in
        match
          D.first_strong_connectivity ~scheduler:Round_robin ~max_rounds:(2 * n)
            inst (C.of_graph g)
        with
        | Some (stats, _) ->
            Alcotest.(check bool) "within n^2 steps" true (stats.steps <= n * n)
        | None -> Alcotest.fail "never became strongly connected"
      done)
    [ 6; 10; 14 ]

let test_connectivity_persists () =
  (* Lemma 9 consequence: once strongly connected, best-response steps
     keep it strongly connected. *)
  let inst = I.uniform ~n:8 ~k:1 in
  let rng = Bbc_prng.Splitmix.create 300 in
  let g = Bbc_graph.Generators.random_k_out rng ~n:8 ~k:1 in
  let connected_seen = ref false in
  let current = ref (C.of_graph g) in
  let check () =
    let sc = strongly_connected inst !current in
    if !connected_seen then
      Alcotest.(check bool) "connectivity persists" true sc
    else if sc then connected_seen := true
  in
  check ();
  ignore
    (D.run
       ~on_step:(fun s ->
         if s.moved then begin
           current := C.with_strategy !current s.node s.strategy;
           check ()
         end)
       ~scheduler:Round_robin ~max_rounds:64 inst !current)

(* The adversarial schedule of the paper's Omega(n^2) argument: start at
   the tail of the path, proceed along the path, then around the ring. *)
let adversarial_order ~ring ~path =
  Array.of_list (List.init path (fun j -> ring + j) @ List.init ring Fun.id)

let test_ring_with_path_slow_convergence () =
  let ring = 8 and path = 4 in
  let inst, config = Bbc.Constructions.ring_with_path ~ring ~path in
  match
    D.first_strong_connectivity
      ~scheduler:(Fixed_order (adversarial_order ~ring ~path))
      ~max_rounds:200 inst config
  with
  | Some (stats, _) ->
      Alcotest.(check bool) "needs many rounds" true (stats.rounds >= 2);
      Alcotest.(check bool) "within n^2" true (stats.steps <= 12 * 12)
  | None -> Alcotest.fail "never strongly connected"

let test_ring_with_path_quadratic_growth () =
  (* Under the adversarial order, steps to strong connectivity grow
     quadratically: roughly path * n activations. *)
  let measure ring path =
    let inst, config = Bbc.Constructions.ring_with_path ~ring ~path in
    match
      D.first_strong_connectivity
        ~scheduler:(Fixed_order (adversarial_order ~ring ~path))
        ~max_rounds:500 inst config
    with
    | Some (stats, _) -> stats.steps
    | None -> Alcotest.fail "never strongly connected"
  in
  let s1 = measure 8 4 in
  let s2 = measure 16 8 in
  Alcotest.(check bool) "superlinear growth" true (s2 >= 3 * s1)

let test_stats_accounting () =
  let inst = I.uniform ~n:4 ~k:1 in
  match D.run ~scheduler:Round_robin ~max_rounds:50 inst (C.empty 4) with
  | Converged (_, stats) ->
      Alcotest.(check int) "steps = rounds * n" (stats.rounds * 4) stats.steps;
      Alcotest.(check bool) "deviations <= steps" true (stats.deviations <= stats.steps)
  | o -> Alcotest.fail (Format.asprintf "expected convergence, got %a" D.pp_outcome o)

let test_final_config_accessor () =
  let inst = I.uniform ~n:4 ~k:1 in
  let o = D.run ~scheduler:Round_robin ~max_rounds:50 inst (C.empty 4) in
  let c = D.final_config o in
  Alcotest.(check int) "right size" 4 (C.n c)

let suite =
  [
    Alcotest.test_case "converges from empty" `Quick test_converges_from_empty_small;
    Alcotest.test_case "stable start: immediate convergence" `Quick test_stable_start_converges_immediately;
    Alcotest.test_case "figure-4 loop cycles" `Quick test_figure4_loop_cycles;
    Alcotest.test_case "figure-4 deviation pattern" `Quick test_figure4_loop_deviation_count;
    Alcotest.test_case "max-cost-first scheduler" `Quick test_max_cost_first_converges;
    Alcotest.test_case "random-order scheduler" `Quick test_random_order_runs;
    Alcotest.test_case "theorem 6: n^2 steps" `Quick test_strong_connectivity_theorem6;
    Alcotest.test_case "connectivity persists (lemma 9)" `Quick test_connectivity_persists;
    Alcotest.test_case "ring+path slow convergence" `Quick test_ring_with_path_slow_convergence;
    Alcotest.test_case "ring+path quadratic growth" `Quick test_ring_with_path_quadratic_growth;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "final_config accessor" `Quick test_final_config_accessor;
  ]

let test_first_improvement_policy () =
  (* First-improvement walks still converge to genuine equilibria (every
     move is strictly improving, convergence means a silent full round). *)
  let inst = I.uniform ~n:7 ~k:1 in
  let rng = Bbc_prng.Splitmix.create 500 in
  for _ = 1 to 5 do
    let g = Bbc_graph.Generators.random_k_out rng ~n:7 ~k:1 in
    match
      D.run ~policy:D.First_improvement ~scheduler:Round_robin ~max_rounds:200
        inst (C.of_graph g)
    with
    | Converged (c, _) ->
        Alcotest.(check bool) "NE" true (Bbc.Stability.is_stable inst c)
    | Cycled _ -> ()
    | Exhausted _ -> Alcotest.fail "neither converged nor cycled"
  done

let test_first_improvement_moves_are_improving () =
  let inst = I.uniform ~n:6 ~k:2 in
  let rng = Bbc_prng.Splitmix.create 501 in
  let c0 = C.of_graph (Bbc_graph.Generators.random_k_out rng ~n:6 ~k:2) in
  let current = ref c0 in
  ignore
    (D.run ~policy:D.First_improvement
       ~on_step:(fun s ->
         if s.moved then begin
           let before = Bbc.Eval.node_cost inst !current s.node in
           current := C.with_strategy !current s.node s.strategy;
           let after = Bbc.Eval.node_cost inst !current s.node in
           Alcotest.(check bool) "strictly improving" true (after < before)
         end)
       ~scheduler:Round_robin ~max_rounds:50 inst c0)

let suite =
  suite
  @ [
      Alcotest.test_case "first-improvement policy" `Quick test_first_improvement_policy;
      Alcotest.test_case "first-improvement moves improve" `Quick
        test_first_improvement_moves_are_improving;
    ]
