module G = Bbc.Gadget
module I = Bbc.Instance

let test_core_shape () =
  let core = G.core () in
  Alcotest.(check int) "core size" G.core_size (I.n core);
  Alcotest.(check bool) "uniform costs carried as general" false (I.is_uniform core);
  for u = 0 to G.core_size - 1 do
    Alcotest.(check int) "budget 1" 1 (I.budget core u);
    for v = 0 to G.core_size - 1 do
      if u <> v then begin
        Alcotest.(check int) "unit cost" 1 (I.cost core u v);
        Alcotest.(check int) "unit length" 1 (I.length core u v)
      end
    done
  done

let test_core_has_no_ne_sum () =
  (* Theorem 1's phenomenon, certified unconditionally: the full profile
     space of the 5-node core contains no pure NE. *)
  Alcotest.(check bool) "no pure NE (Sum)" true (G.verify_core_has_no_ne ())

let test_no_nash_padding_shape () =
  let g = G.no_nash ~n:11 in
  Alcotest.(check int) "n = 11" 11 (I.n g);
  Alcotest.(check bool) "padding structure sound" true (G.padding_is_sound g)

let test_no_nash_minimum_size () =
  Alcotest.(check bool) "too-small padding rejected" true
    (try
       ignore (G.no_nash ~n:6);
       false
     with Invalid_argument _ -> true)

let test_padded_nodes_forced () =
  (* Each padded node's unique positive preference is its cycle
     successor, making the direct link its strict best response against
     any profile; spot-check against random profiles. *)
  let g = G.no_nash ~n:9 in
  let rng = Bbc_prng.Splitmix.create 8 in
  for _ = 1 to 20 do
    let strategies =
      Array.init 9 (fun u ->
          let t = Bbc_prng.Splitmix.int rng 8 in
          [ (if t >= u then t + 1 else t) ])
    in
    let config = Bbc.Config.of_lists 9 strategies in
    for p = G.core_size to 8 do
      let succ = if p + 1 >= 9 then G.core_size else p + 1 in
      let best = Bbc.Best_response.exact g config p in
      Alcotest.(check (list int)) "forced successor link" [ succ ] best.strategy
    done
  done

let test_padded_game_dynamics_never_settle () =
  (* Best-response dynamics on the padded 11-node game must cycle (they
     cannot converge, as no NE exists). *)
  let g = G.no_nash ~n:11 in
  let config = Bbc.Config.empty 11 in
  match Bbc.Dynamics.run ~scheduler:Round_robin ~max_rounds:500 g config with
  | Converged _ -> Alcotest.fail "converged to a NE of a no-NE game!"
  | Cycled _ -> ()
  | Exhausted _ -> Alcotest.fail "expected cycle detection within 500 rounds"

let test_core_restricted_search_agrees () =
  (* Searching only maximal strategies must also find nothing (existence
     of a NE among maximal profiles would contradict the full search). *)
  let core = G.core () in
  let candidates = Array.init G.core_size (Bbc.Exhaustive.maximal_strategies core) in
  match Bbc.Exhaustive.has_equilibrium ~candidates core with
  | Some b -> Alcotest.(check bool) "no NE in maximal profiles" false b
  | None -> Alcotest.fail "search aborted"

let suite =
  [
    Alcotest.test_case "core shape" `Quick test_core_shape;
    Alcotest.test_case "core has no NE (exhaustive)" `Slow test_core_has_no_ne_sum;
    Alcotest.test_case "padding shape" `Quick test_no_nash_padding_shape;
    Alcotest.test_case "padding minimum size" `Quick test_no_nash_minimum_size;
    Alcotest.test_case "padded nodes forced" `Quick test_padded_nodes_forced;
    Alcotest.test_case "padded game never settles" `Quick test_padded_game_dynamics_never_settle;
    Alcotest.test_case "maximal-strategy search agrees" `Quick test_core_restricted_search_agrees;
  ]
