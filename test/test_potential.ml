module P = Bbc.Potential
module I = Bbc.Instance

let test_space_enumeration () =
  let inst = I.uniform ~n:3 ~k:1 in
  match P.enumerate_space inst with
  | Some space ->
      (* 3 strategies per node (2 links + empty) -> 27 profiles. *)
      Alcotest.(check int) "3^3 profiles" 27 (Array.length space.profiles);
      Array.iteri
        (fun i c -> Alcotest.(check int) "index roundtrip" i (space.index c))
        space.profiles
  | None -> Alcotest.fail "space should fit"

let test_space_abort () =
  let inst = I.uniform ~n:8 ~k:2 in
  Alcotest.(check bool) "too large" true
    (P.enumerate_space ~max_profiles:100 inst = None)

let test_sinks_are_equilibria () =
  let inst = I.uniform ~n:3 ~k:1 in
  match P.enumerate_space inst with
  | Some space ->
      let g = P.improvement_graph inst space in
      Alcotest.(check bool) "sinks <-> NEs" true
        (P.sinks_are_equilibria inst space g)
  | None -> Alcotest.fail "space should fit"

let test_no_nash_core_fails_fip () =
  (* A game with no pure NE cannot have the FIP (every maximal
     improvement path would end in a NE). *)
  let core = Bbc.Gadget.core () in
  match P.has_finite_improvement_property core with
  | Some fip -> Alcotest.(check bool) "no ordinal potential" false fip
  | None -> Alcotest.fail "core space should fit"

let test_small_uniform_games_fip () =
  (* Small uniform games: measure (and pin down) whether the improvement
     dynamics can cycle.  (3,1) turns out to have the FIP. *)
  let inst = I.uniform ~n:3 ~k:1 in
  match P.has_finite_improvement_property inst with
  | Some fip -> Alcotest.(check bool) "(3,1) has FIP" true fip
  | None -> Alcotest.fail "space should fit"

let test_best_only_subgraph () =
  (* Best-response arcs are a subset of improvement arcs. *)
  let inst = I.uniform ~n:3 ~k:1 in
  match P.enumerate_space inst with
  | Some space ->
      let full = P.improvement_graph inst space in
      let best = P.improvement_graph ~best_only:true inst space in
      Bbc_graph.Digraph.iter_edges best (fun i j _ ->
          Alcotest.(check bool) "subset" true (Bbc_graph.Digraph.mem_edge full i j));
      (* Unstable profiles have at least one best-response arc. *)
      Array.iteri
        (fun i c ->
          if not (Bbc.Stability.is_stable inst c) then
            Alcotest.(check bool) "unstable -> has BR arc" true
              (Bbc_graph.Digraph.out_degree best i > 0))
        space.profiles
  | None -> Alcotest.fail "space should fit"

let suite =
  [
    Alcotest.test_case "space enumeration" `Quick test_space_enumeration;
    Alcotest.test_case "space abort" `Quick test_space_abort;
    Alcotest.test_case "sinks are equilibria" `Quick test_sinks_are_equilibria;
    Alcotest.test_case "no-NE core fails FIP" `Slow test_no_nash_core_fails_fip;
    Alcotest.test_case "(3,1) has FIP" `Quick test_small_uniform_games_fip;
    Alcotest.test_case "best-only subgraph" `Quick test_best_only_subgraph;
  ]
