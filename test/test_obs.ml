(* Bbc_obs: metrics sharding, span nesting, JSONL sink, disabled no-op. *)

module Obs = Bbc_obs

let with_obs_enabled f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.clear_sinks ();
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — enough to genuinely parse every line the JSONL
   sink emits (objects, strings with escapes, numbers, booleans). *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d in %S" msg !pos s)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> Buffer.add_char b (Char.chr (code land 0xff))
              | None -> fail "bad \\u escape");
              pos := !pos + 4;
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); J_obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); J_arr [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (items [])
        end
    | Some '"' -> J_str (parse_string ())
    | Some 't' -> pos := !pos + 4; J_bool true
    | Some 'f' -> pos := !pos + 5; J_bool false
    | Some 'n' -> pos := !pos + 4; J_null
    | Some _ ->
        let start = !pos in
        while
          !pos < len
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        if !pos = start then fail "expected value";
        J_num (float_of_string (String.sub s start (!pos - start)))
    | None -> fail "empty"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  Obs.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  let c = Obs.counter "test.disabled_counter" in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  let h = Obs.histogram "test.disabled_hist" in
  Obs.observe h 1024;
  Alcotest.(check int) "histogram untouched" 0 (Obs.histogram_count h);
  let g = Obs.gauge "test.disabled_gauge" in
  Obs.set_gauge g 3.5;
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Obs.gauge_value g);
  let ran = ref false in
  let v =
    Obs.with_span "test.disabled_span" (fun () ->
        ran := true;
        17)
  in
  Alcotest.(check bool) "span body ran" true !ran;
  Alcotest.(check int) "span is transparent" 17 v;
  Alcotest.(check bool) "no span aggregate recorded" true
    (not (List.exists (fun (n, _, _) -> n = "test.disabled_span") (Obs.span_stats ())))

let test_counter_basics () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "test.counter" in
  Alcotest.(check int) "starts at 0" 0 (Obs.counter_value c);
  Obs.incr c;
  Obs.add c 9;
  Alcotest.(check int) "incr + add" 10 (Obs.counter_value c);
  let c' = Obs.counter "test.counter" in
  Obs.incr c';
  Alcotest.(check int) "same name, same counter" 11 (Obs.counter_value c);
  Alcotest.check_raises "name clash across kinds"
    (Invalid_argument "Bbc_obs: \"test.counter\" is already registered with another kind")
    (fun () -> ignore (Obs.histogram "test.counter"))

let test_histogram_buckets () =
  with_obs_enabled @@ fun () ->
  let h = Obs.histogram "test.hist" in
  (* Bucket b holds [2^b, 2^(b+1)); bucket 0 also catches v <= 1. *)
  List.iter (Obs.observe h) [ 0; 1; 2; 3; 4; 7; 8; 1024; 2047 ];
  let buckets = Obs.histogram_buckets h in
  Alcotest.(check int) "bucket 0: {0,1}" 2 buckets.(0);
  Alcotest.(check int) "bucket 1: {2,3}" 2 buckets.(1);
  Alcotest.(check int) "bucket 2: {4,7}" 2 buckets.(2);
  Alcotest.(check int) "bucket 3: {8}" 1 buckets.(3);
  Alcotest.(check int) "bucket 10: {1024,2047}" 2 buckets.(10);
  Alcotest.(check int) "count" 9 (Obs.histogram_count h);
  Alcotest.(check int) "sum" (0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024 + 2047) (Obs.histogram_sum h)

let test_shard_merge_parallel () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "test.parallel_counter" in
  let h = Obs.histogram "test.parallel_hist" in
  let n = 20_000 in
  (* Forced multi-domain fan-out: updates land in per-domain shards and
     must merge to exact totals. *)
  let out =
    Bbc_parallel.parallel_map ~jobs:4
      (fun i ->
        Obs.incr c;
        Obs.observe h 4;
        i)
      (Array.init n Fun.id)
  in
  Alcotest.(check int) "map untouched by instrumentation" n (Array.length out);
  Alcotest.(check int) "counter merges exactly" n (Obs.counter_value c);
  Alcotest.(check int) "histogram count merges exactly" n (Obs.histogram_count h);
  Alcotest.(check int) "histogram sum merges exactly" (4 * n) (Obs.histogram_sum h);
  Alcotest.(check int) "all samples in bucket 2" n (Obs.histogram_buckets h).(2)

let test_span_nesting () =
  with_obs_enabled @@ fun () ->
  let seen = ref [] in
  Obs.add_sink (fun e -> seen := e :: !seen);
  let v =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "inner" (fun () ->
            Obs.event "tick";
            42))
  in
  Obs.drain ();
  Alcotest.(check int) "span transparent" 42 v;
  let trace =
    List.rev !seen |> List.filter (fun (e : Obs.ev) -> e.kind <> Obs.Snapshot)
  in
  match trace with
  | [ o_open; i_open; tick; i_close; o_close ] ->
      Alcotest.(check string) "outer opens first" "outer" o_open.Obs.name;
      Alcotest.(check string) "inner opens second" "inner" i_open.Obs.name;
      Alcotest.(check string) "instant inside inner" "tick" tick.Obs.name;
      Alcotest.(check string) "inner closes before outer" "inner" i_close.Obs.name;
      Alcotest.(check string) "outer closes last" "outer" o_close.Obs.name;
      Alcotest.(check int) "outer is top-level" 0 o_open.Obs.parent;
      Alcotest.(check int) "inner's parent is outer" o_open.Obs.id i_open.Obs.parent;
      Alcotest.(check int) "tick's parent is inner" i_open.Obs.id tick.Obs.parent;
      Alcotest.(check bool) "seq strictly increases" true
        (let rec mono = function
           | (a : Obs.ev) :: (b : Obs.ev) :: rest -> a.seq < b.seq && mono (b :: rest)
           | _ -> true
         in
         mono trace);
      let stats = Obs.span_stats () in
      Alcotest.(check bool) "outer aggregated" true
        (List.exists (fun (n, c, _) -> n = "outer" && c = 1) stats);
      Alcotest.(check bool) "inner aggregated" true
        (List.exists (fun (n, c, _) -> n = "inner" && c = 1) stats)
  | evs ->
      Alcotest.failf "expected 5 trace events, got %d" (List.length evs)

let test_span_exception_safety () =
  with_obs_enabled @@ fun () ->
  (try Obs.with_span "raiser" (fun () -> failwith "boom") with Failure _ -> ());
  (* The span closed: a sibling span opened afterwards is top-level. *)
  let seen = ref [] in
  Obs.add_sink (fun e -> seen := e :: !seen);
  Obs.with_span "after" (fun () -> ());
  Obs.drain ();
  let opens =
    List.filter (fun (e : Obs.ev) -> e.kind = Obs.Span_open) (List.rev !seen)
  in
  match opens with
  | [ after ] -> Alcotest.(check int) "stack unwound on raise" 0 after.Obs.parent
  | _ -> Alcotest.fail "expected exactly one span_open"

let test_jsonl_roundtrip () =
  with_obs_enabled @@ fun () ->
  let path = Filename.temp_file "bbc_obs_test" ".jsonl" in
  let oc = open_out path in
  Obs.add_sink (Obs.jsonl_sink oc);
  let c = Obs.counter "test.jsonl_counter" in
  Obs.add c 7;
  Obs.with_span "jsonl.span"
    ~attrs:[ ("n", Obs.Int 5); ("label", Obs.Str "tricky \"quote\"\nline") ]
    (fun () ->
      Obs.event "jsonl.event"
        ~attrs:[ ("f", Obs.Float 1.5); ("ok", Obs.Bool true); ("neg", Obs.Int (-3)) ]);
  Obs.drain ();
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check bool) "several lines emitted" true (List.length lines >= 4);
  (* Every emitted line parses, with the required fields. *)
  List.iter
    (fun line ->
      match parse_json line with
      | J_obj fields ->
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "line has %S" key)
                true (List.mem_assoc key fields))
            [ "seq"; "ts_ns"; "domain"; "kind"; "name"; "id"; "parent"; "attrs" ]
      | _ -> Alcotest.failf "line is not an object: %s" line)
    lines;
  (* The escaped string survives the round trip. *)
  let span_open =
    List.find_map
      (fun line ->
        match parse_json line with
        | J_obj fields
          when List.assoc_opt "kind" fields = Some (J_str "span_open")
               && List.assoc_opt "name" fields = Some (J_str "jsonl.span") ->
            Some fields
        | _ -> None)
      lines
  in
  (match span_open with
  | Some fields -> (
      match List.assoc "attrs" fields with
      | J_obj attrs ->
          Alcotest.(check bool) "string attr round-trips" true
            (List.assoc_opt "label" attrs = Some (J_str "tricky \"quote\"\nline"))
      | _ -> Alcotest.fail "attrs is not an object")
  | None -> Alcotest.fail "span_open line not found");
  (* The counter snapshot carries the merged value. *)
  let snapshot =
    List.find_map
      (fun line ->
        match parse_json line with
        | J_obj fields
          when List.assoc_opt "kind" fields = Some (J_str "snapshot")
               && List.assoc_opt "name" fields = Some (J_str "test.jsonl_counter") ->
            Some fields
        | _ -> None)
      lines
  in
  match snapshot with
  | Some fields -> (
      match List.assoc "attrs" fields with
      | J_obj attrs ->
          Alcotest.(check bool) "snapshot value" true
            (List.assoc_opt "value" attrs = Some (J_num 7.0))
      | _ -> Alcotest.fail "attrs is not an object")
  | None -> Alcotest.fail "counter snapshot line not found"

let test_metrics_only_buffers_nothing () =
  with_obs_enabled @@ fun () ->
  (* No sink registered: events must not accumulate (tracing () = false),
     while metrics still record. *)
  Alcotest.(check bool) "tracing off without sinks" false (Obs.tracing ());
  Obs.event "test.unbuffered";
  let seen = ref 0 in
  Obs.add_sink (fun (e : Obs.ev) -> if e.kind <> Obs.Snapshot then Stdlib.incr seen);
  Obs.drain ();
  Alcotest.(check int) "no buffered events from sink-less period" 0 !seen

let test_reset () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "test.reset_counter" in
  Obs.incr c;
  Obs.with_span "test.reset_span" (fun () -> ());
  Obs.reset ();
  Alcotest.(check int) "counter zeroed, handle still valid" 0 (Obs.counter_value c);
  Alcotest.(check (list (triple string int int))) "span aggregates cleared" []
    (Obs.span_stats ());
  Obs.incr c;
  Alcotest.(check int) "counter usable after reset" 1 (Obs.counter_value c)

let suite =
  [
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "counter basics + registry" `Quick test_counter_basics;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
    Alcotest.test_case "shard merge under Bbc_parallel" `Quick test_shard_merge_parallel;
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick test_span_exception_safety;
    Alcotest.test_case "JSONL sink round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "metrics-only buffers no events" `Quick test_metrics_only_buffers_nothing;
    Alcotest.test_case "reset keeps handles valid" `Quick test_reset;
  ]
