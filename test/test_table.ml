module T = Bbc_experiments.Table

let render t =
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  T.render fmt t;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains s needle =
  let nl = String.length needle and sl = String.length s in
  let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
  go 0

let test_rendering () =
  let t = T.create ~title:"T" ~claim:"C" ~columns:[ "a"; "bb" ] in
  T.add_row t [ "1"; "2" ];
  T.add_rows t [ [ "333"; "4" ] ];
  let s = render t in
  Alcotest.(check bool) "title" true (contains s "T");
  Alcotest.(check bool) "claim" true (contains s "paper: C");
  Alcotest.(check bool) "row order" true (contains s "1    2");
  Alcotest.(check bool) "second row" true (contains s "333  4")

let test_column_mismatch () =
  let t = T.create ~title:"T" ~claim:"C" ~columns:[ "a" ] in
  Alcotest.(check bool) "wrong arity rejected" true
    (try
       T.add_row t [ "1"; "2" ];
       false
     with Invalid_argument _ -> true)

let test_cells () =
  Alcotest.(check string) "int" "42" (T.cell_int 42);
  Alcotest.(check string) "float" "3.14" (T.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "bool yes" "yes" (T.cell_bool true);
  Alcotest.(check string) "bool no" "no" (T.cell_bool false)

let test_registry () =
  Alcotest.(check int) "fifteen experiments" 15
    (List.length Bbc_experiments.Registry.all);
  Alcotest.(check bool) "find e7" true
    (Option.is_some (Bbc_experiments.Registry.find "E7"));
  Alcotest.(check bool) "unknown id" true
    (Option.is_none (Bbc_experiments.Registry.find "e99"))

let suite =
  [
    Alcotest.test_case "rendering" `Quick test_rendering;
    Alcotest.test_case "column mismatch" `Quick test_column_mismatch;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "registry" `Quick test_registry;
  ]
