module D = Bbc_graph.Digraph
module P = Bbc_graph.Paths
module G = Bbc_graph.Generators

let test_bfs_line () =
  let g = G.directed_path 5 in
  let d = P.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_unreachable () =
  let g = G.directed_path 4 in
  let d = P.bfs g 2 in
  Alcotest.(check int) "behind source" P.unreachable d.(0);
  Alcotest.(check int) "ahead" 1 d.(3)

let test_bfs_ring () =
  let g = G.directed_ring 6 in
  let d = P.bfs g 4 in
  Alcotest.(check int) "wraps" 3 d.(1)

let test_dijkstra_weighted () =
  (* 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): shortest 0->1 is 3 via 2. *)
  let g = D.of_edges 3 [ (0, 1, 10); (0, 2, 1); (2, 1, 2) ] in
  let d = P.dijkstra g 0 in
  Alcotest.(check int) "via relay" 3 d.(1)

let test_dijkstra_zero_length () =
  let g = D.of_edges 3 [ (0, 1, 0); (1, 2, 0) ] in
  let d = P.dijkstra g 0 in
  Alcotest.(check int) "zero-length edges" 0 d.(2)

let test_dijkstra_matches_bfs_on_unit () =
  let rng = Bbc_prng.Splitmix.create 99 in
  for _ = 1 to 20 do
    let g = G.random_k_out rng ~n:30 ~k:3 in
    let src = Bbc_prng.Splitmix.int rng 30 in
    Alcotest.(check (array int)) "bfs = dijkstra" (P.bfs g src) (P.dijkstra g src)
  done

let test_shortest_dispatch () =
  let g = D.of_edges 3 [ (0, 1, 1); (1, 2, 1) ] in
  Alcotest.(check bool) "unit lengths" true (P.all_unit_lengths g);
  D.add_edge g 0 2 7;
  Alcotest.(check bool) "no longer unit" false (P.all_unit_lengths g);
  Alcotest.(check int) "shortest uses lengths" 2 (P.shortest g 0).(2)

let test_distance () =
  let g = G.directed_ring 5 in
  Alcotest.(check int) "around the ring" 4 (P.distance g 1 0);
  let h = G.directed_path 3 in
  Alcotest.(check int) "unreachable" P.unreachable (P.distance h 2 0)

let test_path_reconstruction () =
  let g = D.of_edges 4 [ (0, 1, 10); (0, 2, 1); (2, 1, 2); (1, 3, 1) ] in
  (match P.path g 0 3 with
  | Some p -> Alcotest.(check (list int)) "path via relay" [ 0; 2; 1; 3 ] p
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check bool) "no path" true (P.path g 3 0 = None)

let test_path_trivial () =
  let g = D.create 2 in
  match P.path g 0 0 with
  | Some p -> Alcotest.(check (list int)) "self path" [ 0 ] p
  | None -> Alcotest.fail "expected the trivial path"

let test_deep_graph_no_overflow () =
  (* A 100k-node path: traversals must not use O(n) call stack. *)
  let g = G.directed_path 100_000 in
  let d = P.bfs g 0 in
  Alcotest.(check int) "far end" 99_999 d.(99_999)

let suite =
  [
    Alcotest.test_case "bfs on a line" `Quick test_bfs_line;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "bfs ring wrap" `Quick test_bfs_ring;
    Alcotest.test_case "dijkstra weighted relay" `Quick test_dijkstra_weighted;
    Alcotest.test_case "dijkstra zero lengths" `Quick test_dijkstra_zero_length;
    Alcotest.test_case "dijkstra = bfs on unit graphs" `Quick test_dijkstra_matches_bfs_on_unit;
    Alcotest.test_case "shortest dispatch" `Quick test_shortest_dispatch;
    Alcotest.test_case "distance" `Quick test_distance;
    Alcotest.test_case "path reconstruction" `Quick test_path_reconstruction;
    Alcotest.test_case "trivial path" `Quick test_path_trivial;
    Alcotest.test_case "deep graph traversal" `Quick test_deep_graph_no_overflow;
  ]
