module Cons = Bbc.Constructions
module I = Bbc.Instance
module C = Bbc.Config
module E = Bbc.Eval

let test_ring_with_path_shape () =
  let inst, config = Cons.ring_with_path ~ring:6 ~path:3 in
  Alcotest.(check int) "n" 9 (I.n inst);
  Alcotest.(check (option int)) "k = 1" (Some 1) (I.uniform_k inst);
  Alcotest.(check (list int)) "ring edge" [ 1 ] (C.targets config 0);
  Alcotest.(check (list int)) "ring wrap" [ 0 ] (C.targets config 5);
  Alcotest.(check (list int)) "path start" [ 7 ] (C.targets config 6);
  Alcotest.(check (list int)) "path joins ring" [ 0 ] (C.targets config 8);
  Alcotest.(check int) "tail id" 6 (Cons.ring_with_path_tail ~ring:6)

let test_ring_with_path_tail_reaches_all () =
  let inst, config = Cons.ring_with_path ~ring:6 ~path:3 in
  let g = C.to_graph inst config in
  Alcotest.(check int) "tail reaches everyone" 9
    (Bbc_graph.Traversal.reach g (Cons.ring_with_path_tail ~ring:6));
  Alcotest.(check bool) "but not strongly connected" false
    (Bbc_graph.Scc.is_strongly_connected g)

let test_loop_config_is_well_formed () =
  let inst, config = Cons.best_response_loop () in
  Alcotest.(check int) "n = 7" 7 (I.n inst);
  Alcotest.(check (option int)) "k = 2" (Some 2) (I.uniform_k inst);
  Alcotest.(check bool) "feasible" true (C.feasible inst config);
  (* Node costs sit in the 10..12 band shown in Figure 4. *)
  Array.iter
    (fun c -> Alcotest.(check bool) "cost in band" true (c >= 10 && c <= 12))
    (E.all_costs inst config)

let test_loop_is_strongly_connected () =
  let inst, config = Cons.best_response_loop () in
  Alcotest.(check bool) "strongly connected" true
    (Bbc_graph.Scc.is_strongly_connected (C.to_graph inst config))

let test_max_anarchy_shape () =
  let inst, config = Cons.max_anarchy ~k:3 ~l:4 in
  Alcotest.(check int) "n = 1 + (2k-1) l" 21 (I.n inst);
  Alcotest.(check bool) "feasible" true (C.feasible inst config);
  Alcotest.(check int) "root degree k" 3 (C.strategy_size config 0);
  let heads = Cons.max_anarchy_heads ~k:3 ~l:4 in
  Alcotest.(check int) "k heads" 3 (List.length heads);
  Alcotest.(check bool) "root is a head" true (List.mem 0 heads)

let test_max_anarchy_stable_under_max () =
  List.iter
    (fun (k, l) ->
      let inst, config = Cons.max_anarchy ~k ~l in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d l=%d stable under Max" k l)
        true
        (Bbc.Stability.is_stable ~objective:Max inst config))
    [ (3, 4); (3, 6); (4, 5) ]

let test_max_anarchy_cost_is_high () =
  let k = 3 and l = 6 in
  let inst, config = Cons.max_anarchy ~k ~l in
  let n = I.n inst in
  let social = E.social_cost ~objective:Max inst config in
  (* Theorem 8: Omega(n^2 / k) total max-cost; the optimum is O(n log n). *)
  Alcotest.(check bool) "social max-cost is Omega(n l)" true (social >= n * l / 2)

let test_max_anarchy_k2_seed () =
  let inst, seed = Cons.max_anarchy_seed_k2 ~l:4 in
  Alcotest.(check int) "n" 13 (I.n inst);
  Alcotest.(check bool) "feasible" true (C.feasible inst seed)

let test_max_anarchy_equilibrium_k2 () =
  match Cons.max_anarchy_equilibrium ~k:2 ~l:4 with
  | Some (inst, config) ->
      Alcotest.(check bool) "verified NE" true
        (Bbc.Stability.is_stable ~objective:Max inst config)
  | None -> Alcotest.fail "k=2 relaxation should converge"

let test_max_anarchy_equilibrium_k3 () =
  match Cons.max_anarchy_equilibrium ~k:3 ~l:4 with
  | Some (inst, config) ->
      Alcotest.(check bool) "construction itself" true
        (Bbc.Stability.is_stable ~objective:Max inst config)
  | None -> Alcotest.fail "k=3 construction should verify"

let test_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Cons.ring_with_path ~ring:1 ~path:2);
  expect_invalid (fun () -> Cons.ring_with_path ~ring:3 ~path:0);
  expect_invalid (fun () -> Cons.max_anarchy ~k:2 ~l:5);
  expect_invalid (fun () -> Cons.max_anarchy ~k:3 ~l:2)

let suite =
  [
    Alcotest.test_case "ring+path shape" `Quick test_ring_with_path_shape;
    Alcotest.test_case "ring+path reach" `Quick test_ring_with_path_tail_reaches_all;
    Alcotest.test_case "loop config well-formed" `Quick test_loop_config_is_well_formed;
    Alcotest.test_case "loop strongly connected" `Quick test_loop_is_strongly_connected;
    Alcotest.test_case "max-anarchy shape" `Quick test_max_anarchy_shape;
    Alcotest.test_case "max-anarchy stable (Max)" `Quick test_max_anarchy_stable_under_max;
    Alcotest.test_case "max-anarchy cost high" `Quick test_max_anarchy_cost_is_high;
    Alcotest.test_case "k=2 seed" `Quick test_max_anarchy_k2_seed;
    Alcotest.test_case "k=2 equilibrium via relaxation" `Quick test_max_anarchy_equilibrium_k2;
    Alcotest.test_case "k=3 equilibrium direct" `Quick test_max_anarchy_equilibrium_k3;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
