module I = Bbc.Instance
module C = Bbc.Config
module S = Bbc.Stability

let ring n = C.of_lists n (Array.init n (fun v -> [ (v + 1) mod n ]))

let test_ring_k1_stable () =
  (* The directed cycle is the canonical stable (n,1)-graph. *)
  let inst = I.uniform ~n:6 ~k:1 in
  Alcotest.(check bool) "stable" true (S.is_stable inst (ring 6));
  Alcotest.(check (list int)) "no unstable nodes" [] (S.unstable_nodes inst (ring 6));
  Alcotest.(check int) "zero gap" 0 (S.stability_gap inst (ring 6))

let test_empty_unstable () =
  let inst = I.uniform ~n:5 ~k:1 in
  let c = C.empty 5 in
  Alcotest.(check bool) "unstable" false (S.is_stable inst c);
  Alcotest.(check int) "everyone unstable" 5 (List.length (S.unstable_nodes inst c));
  match S.find_deviation inst c with
  | Some d ->
      Alcotest.(check int) "first node" 0 d.node;
      Alcotest.(check bool) "improves" true (d.better.cost < d.current_cost)
  | None -> Alcotest.fail "expected a deviation"

let test_infeasible_is_unstable () =
  let inst = I.uniform ~n:4 ~k:1 in
  let c = C.of_lists 4 [| [ 1; 2 ]; []; []; [] |] in
  (* Over budget: is_stable must reject even if no improving deviation
     search would run. *)
  Alcotest.(check bool) "infeasible not stable" false (S.is_stable inst c)

let test_complete_stable () =
  let inst = I.uniform ~n:5 ~k:4 in
  let c = C.of_lists 5 (Array.init 5 (fun v -> List.filter (( <> ) v) [ 0; 1; 2; 3; 4 ])) in
  Alcotest.(check bool) "complete graph stable" true (S.is_stable inst c)

let test_gap_measures_improvement () =
  let inst = I.uniform ~n:4 ~k:1 in
  let m = I.penalty inst in
  (* Node 3 links nothing; its cost is 3M, its best response reaches all
     three others (cost 1+2+3=6 via the chain 0->1->2?).  Gap is the
     difference for the worst node. *)
  let c = C.of_lists 4 [| [ 1 ]; [ 2 ]; [ 0 ]; [] |] in
  let gap = S.stability_gap inst c in
  Alcotest.(check int) "gap" ((3 * m) - 6) gap

let test_deviation_strictness () =
  (* A profile where a node has an equal-cost alternative but nothing
     strictly better must count as stable. *)
  let w = [| [| 0; 1; 1 |]; [| 0; 0; 0 |]; [| 0; 0; 0 |] |] in
  let inst = I.of_weights ~k:1 w in
  (* Node 0 links 1 (cost 1 + M); linking 2 also costs 1 + M: no strict
     improvement.  1 and 2 have zero weights: stable. *)
  let c = C.of_lists 3 [| [ 1 ]; []; [] |] in
  Alcotest.(check bool) "ties do not destabilize" true (S.is_stable inst c)

let test_max_objective_stability () =
  let inst = I.uniform ~n:5 ~k:1 in
  Alcotest.(check bool) "ring stable under max" true
    (S.is_stable ~objective:Max inst (ring 5))

let test_star_unstable_k1 () =
  (* All nodes link node 0, node 0 links node 1: node 0's strategy is
     forced but others are already optimal?  Check the checker finds the
     right unstable set. *)
  let inst = I.uniform ~n:5 ~k:1 in
  let c = C.of_lists 5 [| [ 1 ]; [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] |] in
  let unstable = S.unstable_nodes inst c in
  (* 2,3,4 see 0 at 1, 1 at 2, others at 3 via 0->1->? 1 links 0: nodes
     2,3,4 unreachable from each other: they can't fix that with one
     link either way... compute expectations directly instead. *)
  List.iter
    (fun u ->
      Alcotest.(check bool) "reported unstable nodes really improve" true
        (Option.is_some (Bbc.Best_response.improving inst c u)))
    unstable;
  List.iter
    (fun u ->
      if not (List.mem u unstable) then
        Alcotest.(check bool) "others do not" true
          (Bbc.Best_response.improving inst c u = None))
    [ 0; 1; 2; 3; 4 ]

let suite =
  [
    Alcotest.test_case "ring is stable (k=1)" `Quick test_ring_k1_stable;
    Alcotest.test_case "empty profile unstable" `Quick test_empty_unstable;
    Alcotest.test_case "infeasible profile not stable" `Quick test_infeasible_is_unstable;
    Alcotest.test_case "complete graph stable" `Quick test_complete_stable;
    Alcotest.test_case "gap measurement" `Quick test_gap_measures_improvement;
    Alcotest.test_case "strictness of deviations" `Quick test_deviation_strictness;
    Alcotest.test_case "max-objective stability" `Quick test_max_objective_stability;
    Alcotest.test_case "unstable set is exact" `Quick test_star_unstable_k1;
  ]

let test_parallel_agrees_with_sequential () =
  let rng = Bbc_prng.Splitmix.create 900 in
  for _ = 1 to 10 do
    let n = 12 in
    let inst = I.uniform ~n ~k:2 in
    let c = C.of_graph (Bbc_graph.Generators.random_k_out rng ~n ~k:2) in
    Alcotest.(check bool) "parallel = sequential" (S.is_stable inst c)
      (S.is_stable_parallel ~domains:3 inst c)
  done;
  (* A known stable graph, with more domains than useful. *)
  let inst, config = Bbc.Willows.build { k = 2; h = 2; l = 1 } in
  Alcotest.(check bool) "stable willows" true
    (S.is_stable_parallel ~domains:4 inst config);
  Alcotest.(check bool) "degenerate domain count" true
    (S.is_stable_parallel ~domains:1 inst config)

let suite =
  suite
  @ [
      Alcotest.test_case "parallel stability" `Quick test_parallel_agrees_with_sequential;
    ]
