module D = Bbc_graph.Digraph

let test_empty () =
  let g = D.create 4 in
  Alcotest.(check int) "n" 4 (D.n g);
  Alcotest.(check int) "no edges" 0 (D.edge_count g);
  Alcotest.(check (list (triple int int int))) "edges" [] (D.edges g)

let test_add_and_query () =
  let g = D.create 3 in
  D.add_edge g 0 1 5;
  D.add_edge g 1 2 1;
  Alcotest.(check int) "edge count" 2 (D.edge_count g);
  Alcotest.(check bool) "mem 0->1" true (D.mem_edge g 0 1);
  Alcotest.(check bool) "not mem 1->0" false (D.mem_edge g 1 0);
  Alcotest.(check (option int)) "length" (Some 5) (D.edge_length g 0 1);
  Alcotest.(check (option int)) "absent" None (D.edge_length g 2 0)

let test_replace_edge () =
  let g = D.create 3 in
  D.add_edge g 0 1 5;
  D.add_edge g 0 1 9;
  Alcotest.(check int) "still one edge" 1 (D.edge_count g);
  Alcotest.(check (option int)) "updated length" (Some 9) (D.edge_length g 0 1)

let test_remove () =
  let g = D.create 3 in
  D.add_edge g 0 1 1;
  D.add_edge g 0 2 1;
  D.remove_edge g 0 1;
  Alcotest.(check int) "one left" 1 (D.edge_count g);
  Alcotest.(check bool) "gone" false (D.mem_edge g 0 1);
  D.remove_edge g 0 1;
  Alcotest.(check int) "idempotent" 1 (D.edge_count g)

let test_remove_out_edges () =
  let g = D.create 4 in
  D.add_edge g 0 1 1;
  D.add_edge g 0 2 1;
  D.add_edge g 1 2 1;
  D.remove_out_edges g 0;
  Alcotest.(check int) "only 1->2 remains" 1 (D.edge_count g);
  Alcotest.(check int) "degree 0" 0 (D.out_degree g 0)

let test_self_loop_rejected () =
  let g = D.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self-loop")
    (fun () -> D.add_edge g 1 1 1)

let test_negative_length_rejected () =
  let g = D.create 2 in
  Alcotest.check_raises "negative" (Invalid_argument "Digraph.add_edge: negative length")
    (fun () -> D.add_edge g 0 1 (-1))

let test_out_of_range () =
  let g = D.create 2 in
  Alcotest.(check bool) "raises" true
    (try
       D.add_edge g 0 5 1;
       false
     with Invalid_argument _ -> true)

let test_copy_isolated () =
  let g = D.create 3 in
  D.add_edge g 0 1 1;
  let h = D.copy g in
  D.add_edge g 1 2 1;
  Alcotest.(check int) "copy unaffected" 1 (D.edge_count h);
  Alcotest.(check int) "original grew" 2 (D.edge_count g)

let test_transpose () =
  let g = D.of_edges 3 [ (0, 1, 4); (1, 2, 7) ] in
  let t = D.transpose g in
  Alcotest.(check (list (triple int int int)))
    "reversed" [ (1, 0, 4); (2, 1, 7) ] (D.edges t)

let test_of_unit_edges () =
  let g = D.of_unit_edges 3 [ (0, 1); (2, 0) ] in
  Alcotest.(check (option int)) "unit" (Some 1) (D.edge_length g 2 0)

let test_equal () =
  let g = D.of_edges 3 [ (0, 1, 1); (1, 2, 2) ] in
  let h = D.of_edges 3 [ (1, 2, 2); (0, 1, 1) ] in
  Alcotest.(check bool) "order-insensitive equality" true (D.equal g h);
  D.add_edge h 2 0 1;
  Alcotest.(check bool) "differs" false (D.equal g h)

let test_iter_edges () =
  let g = D.of_edges 4 [ (0, 1, 1); (1, 2, 3); (3, 0, 2) ] in
  let total = D.fold_edges g (fun acc _ _ len -> acc + len) 0 in
  Alcotest.(check int) "fold lengths" 6 total;
  let count = ref 0 in
  D.iter_edges g (fun _ _ _ -> incr count);
  Alcotest.(check int) "iter count" 3 !count

let test_out_edges () =
  let g = D.of_edges 4 [ (0, 1, 1); (0, 2, 5); (0, 3, 2) ] in
  let sorted = List.sort compare (D.out_edges g 0) in
  Alcotest.(check (list (pair int int))) "out edges" [ (1, 1); (2, 5); (3, 2) ] sorted;
  Alcotest.(check int) "degree" 3 (D.out_degree g 0)

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty;
    Alcotest.test_case "add and query" `Quick test_add_and_query;
    Alcotest.test_case "replace edge" `Quick test_replace_edge;
    Alcotest.test_case "remove edge" `Quick test_remove;
    Alcotest.test_case "remove out edges" `Quick test_remove_out_edges;
    Alcotest.test_case "self loop rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "negative length rejected" `Quick test_negative_length_rejected;
    Alcotest.test_case "out of range rejected" `Quick test_out_of_range;
    Alcotest.test_case "copy is isolated" `Quick test_copy_isolated;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "of_unit_edges" `Quick test_of_unit_edges;
    Alcotest.test_case "structural equality" `Quick test_equal;
    Alcotest.test_case "iter/fold edges" `Quick test_iter_edges;
    Alcotest.test_case "out edges" `Quick test_out_edges;
  ]
