module I = Bbc.Instance

let test_uniform () =
  let t = I.uniform ~n:10 ~k:3 in
  Alcotest.(check int) "n" 10 (I.n t);
  Alcotest.(check bool) "uniform" true (I.is_uniform t);
  Alcotest.(check (option int)) "k" (Some 3) (I.uniform_k t);
  Alcotest.(check int) "weight" 1 (I.weight t 0 5);
  Alcotest.(check int) "cost" 1 (I.cost t 2 7);
  Alcotest.(check int) "length" 1 (I.length t 1 9);
  Alcotest.(check int) "budget" 3 (I.budget t 4);
  Alcotest.(check bool) "penalty exceeds n*maxlen" true (I.penalty t > 10)

let test_uniform_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> I.uniform ~n:1 ~k:1);
  expect_invalid (fun () -> I.uniform ~n:5 ~k:0);
  expect_invalid (fun () -> I.uniform ~n:5 ~k:5)

let test_general () =
  let w = [| [| 0; 2 |]; [| 1; 0 |] |] in
  let c = [| [| 0; 3 |]; [| 1; 0 |] |] in
  let l = [| [| 1; 4 |]; [| 2; 1 |] |] in
  let t = I.general ~weight:w ~cost:c ~length:l ~budget:[| 3; 1 |] () in
  Alcotest.(check bool) "not uniform" false (I.is_uniform t);
  Alcotest.(check (option int)) "no uniform k" None (I.uniform_k t);
  Alcotest.(check int) "weight" 2 (I.weight t 0 1);
  Alcotest.(check int) "cost" 3 (I.cost t 0 1);
  Alcotest.(check int) "length" 2 (I.length t 1 0);
  Alcotest.(check int) "max length" 4 (I.max_length t);
  Alcotest.(check bool) "default penalty > n * maxlen" true (I.penalty t > 2 * 4)

let test_general_validation () =
  let ones n = Array.init n (fun _ -> Array.make n 1) in
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  (* ragged *)
  expect_invalid (fun () ->
      I.general
        ~weight:[| [| 0; 1 |]; [| 1 |] |]
        ~cost:(ones 2) ~length:(ones 2) ~budget:[| 1; 1 |] ());
  (* negative weight *)
  expect_invalid (fun () ->
      I.general
        ~weight:[| [| 0; -1 |]; [| 1; 0 |] |]
        ~cost:(ones 2) ~length:(ones 2) ~budget:[| 1; 1 |] ());
  (* zero length *)
  expect_invalid (fun () ->
      I.general ~weight:(ones 2) ~cost:(ones 2)
        ~length:[| [| 0; 0 |]; [| 1; 0 |] |]
        ~budget:[| 1; 1 |] ());
  (* penalty too small *)
  expect_invalid (fun () ->
      I.general ~penalty:2 ~weight:(ones 2) ~cost:(ones 2) ~length:(ones 2)
        ~budget:[| 1; 1 |] ())

let test_of_weights () =
  let t = I.of_weights ~k:2 [| [| 0; 5; 0 |]; [| 1; 0; 1 |]; [| 0; 0; 0 |] |] in
  Alcotest.(check int) "weight carried" 5 (I.weight t 0 1);
  Alcotest.(check int) "unit cost" 1 (I.cost t 0 2);
  Alcotest.(check int) "budget" 2 (I.budget t 1)

let test_with_penalty () =
  let t = I.uniform ~n:4 ~k:1 in
  let t' = I.with_penalty t 100 in
  Alcotest.(check int) "penalty updated" 100 (I.penalty t');
  Alcotest.(check int) "original unchanged" 16 (I.penalty t);
  Alcotest.(check bool) "too-small penalty rejected" true
    (try
       ignore (I.with_penalty t 4);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "uniform accessors" `Quick test_uniform;
    Alcotest.test_case "uniform validation" `Quick test_uniform_validation;
    Alcotest.test_case "general accessors" `Quick test_general;
    Alcotest.test_case "general validation" `Quick test_general_validation;
    Alcotest.test_case "of_weights" `Quick test_of_weights;
    Alcotest.test_case "with_penalty" `Quick test_with_penalty;
  ]
