(* A tour of Section 4.2: sweep Abelian Cayley families and watch
   Theorem 5 bite as n grows past the stability threshold, then recover
   stability in the near-complete regime of Lemma 8.

   Run with:  dune exec examples/cayley_tour.exe *)

let verdict c =
  let stable = Bbc.Cayley_game.is_stable c in
  let thm5 = Bbc.Cayley_game.best_theorem5_deviation c in
  Printf.sprintf "%-8s %s"
    (if stable then "stable" else "UNSTABLE")
    (match thm5 with
    | Some d -> Printf.sprintf "(thm-5 swap improves by %d)" (d.old_cost - d.new_cost)
    | None -> "")

let () =
  Format.printf "directed cycles (k = 1) — always stable:@.";
  List.iter
    (fun n ->
      let c = Bbc_group.Cayley.circulant ~n ~offsets:[ 1 ] in
      Format.printf "  Z_%-3d {1}:        %s@." n (verdict c))
    [ 6; 12; 20 ];

  Format.printf "@.circulants with offsets {1, 3} — instability sets in as n grows:@.";
  List.iter
    (fun n ->
      let c = Bbc_group.Cayley.circulant ~n ~offsets:[ 1; 3 ] in
      Format.printf "  Z_%-3d {1,3}:      %s@." n (verdict c))
    [ 6; 8; 10; 12; 16; 24; 32 ];

  Format.printf "@.2-D tori:@.";
  List.iter
    (fun (a, b) ->
      let c = Bbc_group.Cayley.torus a b in
      Format.printf "  %dx%d torus:        %s@." a b (verdict c))
    [ (3, 3); (4, 4); (5, 5); (6, 6) ];

  Format.printf "@.hypercubes (Corollary 1: unstable for k > 4):@.";
  List.iter
    (fun d ->
      let c = Bbc_group.Cayley.hypercube d in
      Format.printf "  Q%d (n=%-3d k=%d):  %s@." d (1 lsl d) d (verdict c))
    [ 2; 3; 4; 5 ];

  Format.printf "@.the Lemma-8 regime (k > (n-2)/2) — stability returns:@.";
  List.iter
    (fun (n, k) ->
      let offsets = List.init k (fun i -> i + 1) in
      let c = Bbc_group.Cayley.circulant ~n ~offsets in
      Format.printf "  Z_%-3d k=%d:        %s@." n k (verdict c))
    [ (9, 4); (10, 5); (8, 7) ];

  Format.printf
    "@.moral: between the tiny and the near-complete regimes, no Abelian \
     Cayley graph@.survives selfish scrutiny — Theorem 5.@."
