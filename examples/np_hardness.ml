(* The NP-hardness pipeline end to end (Theorem 2):

   1. take a 3SAT formula,
   2. compile it into a BBC game,
   3. solve the formula,
   4. if satisfiable: encode the assignment as a network and verify it is
      a pure Nash equilibrium whose variable links decode the assignment
      back;
   5. if unsatisfiable: certify by exhaustive search that the game has no
      pure Nash equilibrium (so any equilibrium-finder doubles as a SAT
      solver — that's the hardness).

   Run with:  dune exec examples/np_hardness.exe *)

module Cnf = Bbc_sat.Cnf
module Solver = Bbc_sat.Solver

let demo name formula =
  Format.printf "--- %s@." name;
  Format.printf "formula: %a@." Cnf.pp formula;
  let t = Bbc.Reduction.build formula in
  Format.printf "compiled game: %d nodes (%d vars, %d clauses)@."
    (Bbc.Instance.n t.instance) (Cnf.num_vars formula) (Cnf.num_clauses formula);
  match Solver.solve formula with
  | Solver.Sat assignment ->
      let config = Bbc.Reduction.encode t assignment in
      Format.printf "satisfiable; encoded network is a pure NE: %b@."
        (Bbc.Stability.is_stable t.instance config);
      let decoded = Bbc.Reduction.decode t config in
      Format.printf "decoded assignment: %s  (satisfies: %b)@."
        (String.concat ", "
           (List.init (Cnf.num_vars formula) (fun i ->
                Printf.sprintf "x%d=%b" (i + 1) decoded.(i + 1))))
        (Cnf.eval formula decoded);
      Format.printf "@."
  | Solver.Unsat ->
      let candidates = Bbc.Reduction.candidate_strategies t in
      (match Bbc.Exhaustive.has_equilibrium ~candidates t.instance with
      | Some has -> Format.printf "unsatisfiable; game has a pure NE: %b@." has
      | None -> Format.printf "unsatisfiable; search aborted@.");
      Format.printf "@."

let () =
  Format.printf "Theorem 2: deciding pure-NE existence is NP-hard@.@.";
  demo "a satisfiable instance"
    (Cnf.make ~num_vars:3 [ [ 1; 2; -3 ]; [ -1; 3; 3 ]; [ 2; 3; 1 ] ]);
  demo "an unsatisfiable instance"
    (Cnf.make ~num_vars:2 [ [ 1; 2; 2 ]; [ 1; -2; -2 ]; [ -1; 2; 2 ]; [ -1; -2; -2 ] ]);
  Format.printf
    "any algorithm that decides whether a BBC game has a pure Nash@.\
     equilibrium decides 3SAT — Theorem 2.@."
