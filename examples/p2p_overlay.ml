(* P2P / overlay scenario (the paper's third motivation): every peer
   keeps a small neighbor table (out-degree k) and wants low worst-case
   latency to the rest of the swarm — the BBC-max objective of
   Section 5.

   Two designs are compared:
   1. a "regular" overlay where every peer uses the same offsets (a
      circulant / Abelian Cayley graph) — simple to deploy, but
      Theorem 5 says selfish peers will deviate from it;
   2. the equilibrium the swarm actually drifts to when peers keep
      selfishly rewiring.

   Run with:  dune exec examples/p2p_overlay.exe *)

let () =
  let n = 24 and k = 2 in
  Format.printf "overlay with %d peers, neighbor tables of size %d@.@." n k;

  (* Design 1: the classic regular overlay with offsets {1, 5}. *)
  let regular = Bbc_group.Cayley.circulant ~n ~offsets:[ 1; 5 ] in
  let instance, config = Bbc.Cayley_game.to_game regular in
  let diameter g = Option.value ~default:(-1) (Bbc_graph.Metrics.diameter g) in
  Format.printf "regular overlay (circulant {1,5}):@.";
  Format.printf "  diameter %d, max-latency social cost %d@."
    (diameter (Bbc.Config.to_graph instance config))
    (Bbc.Eval.social_cost ~objective:Max instance config);
  Format.printf "  stable under selfish rewiring: %b@."
    (Bbc.Cayley_game.is_stable regular);
  (match Bbc.Cayley_game.best_theorem5_deviation regular with
  | Some d ->
      Format.printf
        "  Theorem-5 deviation: swap offset %d for %d, cost %d -> %d@."
        d.generator
        (Bbc_group.Abelian.add regular.group d.generator d.generator)
        d.old_cost d.new_cost
  | None -> Format.printf "  (no offset-doubling deviation improves)@.");

  (* Design 2: let the peers play it out. *)
  Format.printf "@.letting peers selfishly rewire (max-latency objective)...@.";
  match
    Bbc.Dynamics.run ~objective:Max ~scheduler:Bbc.Dynamics.Round_robin
      ~max_rounds:400 instance config
  with
  | Bbc.Dynamics.Converged (eq, stats) ->
      let g = Bbc.Config.to_graph instance eq in
      Format.printf "  reached an equilibrium in %d rounds (%d rewirings)@."
        stats.rounds stats.deviations;
      Format.printf "  diameter %d, max-latency social cost %d@." (diameter g)
        (Bbc.Eval.social_cost ~objective:Max instance eq);
      Format.printf "  verified stable: %b@."
        (Bbc.Stability.is_stable ~objective:Max instance eq);
      Format.printf "  still a regular graph: %b@."
        (let offsets u =
           List.map (fun v -> (v - u + n) mod n) (Bbc.Config.targets eq u)
           |> List.sort compare
         in
         List.for_all (fun u -> offsets u = offsets 0) (List.init n Fun.id));
      Format.printf
        "@.the designer's dilemma (Section 4.2): regularity and stability \
         are incompatible —@.a stable overlay exists, but it is not the \
         symmetric design you deployed.@."
  | outcome ->
      Format.printf "  no equilibrium: %a@." Bbc.Dynamics.pp_outcome outcome;
      Format.printf
        "  (BBC-max walks may cycle; Theorem 7 shows max games can even \
         lack equilibria)@."
