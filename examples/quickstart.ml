(* Quickstart: define a game, evaluate costs, compute a best response,
   run best-response dynamics to a pure Nash equilibrium, and verify it.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* An (8,2)-uniform BBC game: 8 players, each may buy 2 unit-cost
     links; everyone wants short hop distances to everyone else. *)
  let instance = Bbc.Instance.uniform ~n:8 ~k:2 in

  (* Start from a random 2-out configuration (seeded, reproducible). *)
  let rng = Bbc_prng.Splitmix.create 7 in
  let start =
    Bbc.Config.of_graph (Bbc_graph.Generators.random_k_out rng ~n:8 ~k:2)
  in
  Format.printf "initial configuration:@.%a@." Bbc.Config.pp start;
  Format.printf "initial social cost: %d@.@."
    (Bbc.Eval.social_cost instance start);

  (* What would node 0 buy if it could rewire right now? *)
  let br = Bbc.Best_response.exact instance start 0 in
  Format.printf "node 0 best response: links to [%s] at cost %d (now %d)@.@."
    (String.concat " " (List.map string_of_int br.strategy))
    br.cost
    (Bbc.Eval.node_cost instance start 0);

  (* Let everyone repeatedly best-respond, round-robin. *)
  match
    Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:100
      instance start
  with
  | Bbc.Dynamics.Converged (equilibrium, stats) ->
      Format.printf "converged after %d rounds (%d rewirings)@." stats.rounds
        stats.deviations;
      Format.printf "equilibrium:@.%a@." Bbc.Config.pp equilibrium;
      Format.printf "social cost at equilibrium: %d@."
        (Bbc.Eval.social_cost instance equilibrium);
      Format.printf "verified pure Nash equilibrium: %b@."
        (Bbc.Stability.is_stable instance equilibrium);
      Format.printf "price-of-anarchy ratio vs degree-2 lower bound: %.2f@."
        (Bbc.Metrics.anarchy_ratio instance equilibrium)
  | outcome ->
      Format.printf "no equilibrium reached: %a@." Bbc.Dynamics.pp_outcome
        outcome
