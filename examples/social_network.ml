(* Social-network scenario (the paper's "campaign manager" motivation):
   players with non-uniform preference weights — everyone wants to be
   close to a few influencers, each camp wants to reach its own base,
   and attention budgets are tight (the Dunbar limit: k links each).

   We build the weighted game, run best-response dynamics, inspect who
   ends up central, and measure how unfair the outcome is.

   Run with:  dune exec examples/social_network.exe *)

let n = 14
let influencers = [ 0; 1 ] (* two rival "candidates" *)

let camp u = u mod 2 (* everyone else leans toward candidate u mod 2 *)

let weights () =
  Array.init n (fun u ->
      Array.init n (fun v ->
          if u = v then 0
          else if List.mem u influencers then
            (* Candidates care about reaching every voter, doubly so the
               other candidate's camp. *)
            if List.mem v influencers then 4
            else if camp v <> u then 3
            else 2
          else if v = camp u then 5 (* own candidate *)
          else if List.mem v influencers then 2 (* rival candidate *)
          else if camp v = camp u then 2 (* same camp *)
          else 1))

let () =
  let instance = Bbc.Instance.of_weights ~k:2 (weights ()) in
  let rng = Bbc_prng.Splitmix.create 11 in
  let start =
    Bbc.Config.of_graph (Bbc_graph.Generators.random_k_out rng ~n ~k:2)
  in
  Format.printf "social network formation: %d people, 2 candidates, k = 2@.@." n;
  match
    Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:300
      instance start
  with
  | Bbc.Dynamics.Converged (eq, stats) ->
      Format.printf "stable network after %d rounds (%d rewirings)@."
        stats.rounds stats.deviations;
      Format.printf "verified Nash equilibrium: %b@.@."
        (Bbc.Stability.is_stable instance eq);
      (* Who collects the most incoming attention? *)
      let indegree = Array.make n 0 in
      for u = 0 to n - 1 do
        List.iter
          (fun v -> indegree.(v) <- indegree.(v) + 1)
          (Bbc.Config.targets eq u)
      done;
      Format.printf "incoming links per node:@.";
      Array.iteri
        (fun v d ->
          Format.printf "  %2d%s: %s@." v
            (if List.mem v influencers then " (candidate)" else "")
            (String.make d '#'))
        indegree;
      let g = Bbc.Config.to_graph instance eq in
      let betweenness = Bbc_graph.Centrality.betweenness g in
      let top =
        List.init n (fun v -> (betweenness.(v), v))
        |> List.sort (fun a b -> compare b a)
        |> List.filteri (fun i _ -> i < 3)
      in
      Format.printf "@.most central brokers (betweenness):@.";
      List.iter
        (fun (b, v) ->
          Format.printf "  node %d%s: %.1f@." v
            (if List.mem v influencers then " (candidate)" else "")
            b)
        top;
      Format.printf "attention inequality (gini of in-degrees): %.2f@."
        (Bbc_graph.Centrality.gini (Bbc_graph.Centrality.in_degrees g));
      let costs = Bbc.Eval.all_costs instance eq in
      let f = Bbc.Metrics.fairness instance eq in
      Format.printf "@.candidate costs: %d and %d@." costs.(0) costs.(1);
      Format.printf "cost spread across the network: min %d, max %d (ratio %.2f)@."
        f.min_cost f.max_cost f.ratio;
      (* The paper's fairness lemma is about uniform games; non-uniform
         preferences can produce much more unequal outcomes.  Compare: *)
      let uniform = Bbc.Instance.uniform ~n ~k:2 in
      (match
         Bbc.Dynamics.run ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:300
           uniform start
       with
      | Bbc.Dynamics.Converged (ueq, _) ->
          let uf = Bbc.Metrics.fairness uniform ueq in
          Format.printf
            "same people with uniform interests: ratio %.2f (Lemma-1 bound %.2f)@."
            uf.ratio
            (Bbc.Metrics.lemma1_ratio_bound ~n ~k:2)
      | _ -> Format.printf "uniform control did not converge@.")
  | outcome ->
      Format.printf "dynamics did not converge: %a@." Bbc.Dynamics.pp_outcome
        outcome;
      Format.printf
        "(non-uniform games may have no pure equilibrium at all — Theorem 1)@."
