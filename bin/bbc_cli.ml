(* bbc — command-line laboratory for Bounded Budget Connection games.

   Subcommands:
     experiment  run reproduction experiments (by id, or all)
     dynamics    run a best-response walk on a generated instance
     search      exhaustively enumerate pure Nash equilibria
     verify      check stability of a named construction
     dot         emit Graphviz for a construction
     reduce      build the Theorem-2 instance from a DIMACS file
     save/load   serialize constructions to the bbc text/JSON formats
     convert     validate + re-emit an instance/config file (text <-> JSON)
     serve       long-running game-analysis daemon (line-delimited JSON)
     bigbench    large-n streaming build + landmark social-cost estimate
     fuzz        differential fuzzing of every engine pair, with shrinking
     campaign    checkpointed Monte-Carlo sweeps (run/resume/report)

   Observability: --metrics prints the Bbc_obs summary on exit and
   --trace-out FILE writes the structured JSONL event stream; both are
   available on the analysis subcommands. *)

open Cmdliner

let fmt = Format.std_formatter

(* ---------------------------------------------------------------- *)
(* Observability options.                                             *)

type obs = { metrics : bool; trace_out : string option }

let obs_opts =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Enable the observability subsystem and print its summary (span \
             timings, counter table, histograms) on exit.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Enable the observability subsystem and write the structured \
             trace (JSONL, one event per line: span open/close, activation \
             events, metric snapshots) to $(docv).")
  in
  Term.(const (fun metrics trace_out -> { metrics; trace_out }) $ metrics $ trace_out)

(* Human rendering of the dynamics activation stream: the same events the
   JSONL sink sees, formatted as the historical --trace output. *)
let render_activation (e : Bbc_obs.ev) =
  if e.kind = Bbc_obs.Instant && e.name = "dynamics.activation" then begin
    let geti k =
      match List.assoc_opt k e.attrs with Some (Bbc_obs.Int i) -> i | _ -> 0
    in
    let gets k =
      match List.assoc_opt k e.attrs with Some (Bbc_obs.Str s) -> s | _ -> ""
    in
    Format.fprintf fmt "  step %4d (round %3d): node %3d -> [%s] cost %d -> %d@."
      (geti "step") (geti "round") (geti "node") (gets "strategy") (geti "old_cost")
      (geti "new_cost")
  end

(* Run [k] under the requested observability setup, then drain the trace,
   close the sink file and print the summary.  [text_trace] additionally
   routes the event stream through [render_activation] (dynamics
   --trace). *)
let with_obs ?(text_trace = false) o k =
  let oc = Option.map open_out o.trace_out in
  if o.metrics || oc <> None || text_trace then Bbc_obs.enable ();
  Option.iter (fun oc -> Bbc_obs.add_sink (Bbc_obs.jsonl_sink oc)) oc;
  if text_trace then Bbc_obs.add_sink render_activation;
  Fun.protect
    ~finally:(fun () ->
      Bbc_obs.drain ();
      Option.iter close_out oc;
      if o.metrics then Bbc_obs.pp_summary fmt;
      Bbc_obs.clear_sinks ())
    k

(* ---------------------------------------------------------------- *)
(* Named constructions now live in Bbc.Catalog, shared with the
   server's [gen] endpoint; this shim keeps the historical call-site
   shape. *)

let named_configs = Bbc.Catalog.names

let build_config name ~n ~k ~h ~l ~seed =
  Bbc.Catalog.build name { Bbc.Catalog.n; k; h; l; seed }

(* ---------------------------------------------------------------- *)
(* Common options.                                                    *)

let name_arg =
  let doc =
    "Named construction: " ^ String.concat ", " named_configs ^ "."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)

let n_opt = Arg.(value & opt int 12 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")
let k_opt = Arg.(value & opt int 2 & info [ "k"; "budget" ] ~doc:"Budget / out-degree.")
let h_opt = Arg.(value & opt int 2 & info [ "height" ] ~doc:"Willows tree height.")
let l_opt = Arg.(value & opt int 3 & info [ "tail" ] ~doc:"Willows/max-anarchy tail length.")
let seed_opt = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.")

let objective_opt =
  let objective_conv =
    Arg.enum [ ("sum", Bbc.Objective.Sum); ("max", Bbc.Objective.Max) ]
  in
  Arg.(value & opt objective_conv Bbc.Objective.Sum & info [ "objective" ] ~doc:"Cost objective: sum or max.")

(* Applied for its side effect on the Bbc_parallel pool before the
   command body runs; every parallel call site then picks it up as the
   default job count. *)
let jobs_opt =
  let doc =
    "Domain-pool size for parallel evaluation (cost sweeps, stability \
     checks, exhaustive search).  Defaults to $(b,BBC_JOBS) or the \
     machine's recommended domain count; 1 forces sequential execution."
  in
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some j when j >= 1 -> Ok j
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let apply = function
    | Some j -> Bbc_parallel.set_default_jobs j
    | None -> ()
  in
  Term.(const apply $ Arg.(value & opt (some jobs_conv) None & info [ "j"; "jobs" ] ~docv:"N" ~doc))

(* Like [jobs_opt]: applied for its side effect on the global engine
   switch before the command body runs. *)
let no_incremental_opt =
  let doc =
    "Disable the incremental evaluation engine (delta-repaired shortest \
     paths + cost caching) and use the from-scratch reference oracle for \
     dynamics and stability checks.  Also honours \
     $(b,BBC_NO_INCREMENTAL=1).  Results are identical either way; this \
     exists for cross-checking and timing."
  in
  let apply disable = if disable then Bbc.Incr.set_enabled false in
  Term.(const apply $ Arg.(value & flag & info [ "no-incremental" ] ~doc))

(* ---------------------------------------------------------------- *)

(* The advertised id range comes from the registry, so it stays honest
   as experiments are added. *)
let experiment_range =
  match Bbc_experiments.Registry.all with
  | [] -> "none"
  | first :: rest ->
      let last = List.fold_left (fun _ e -> e) first rest in
      Printf.sprintf "%s..%s" first.Bbc_experiments.Registry.id
        last.Bbc_experiments.Registry.id

let experiment_cmd =
  let ids =
    let doc = Printf.sprintf "Experiment ids (%s); all when omitted." experiment_range in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Larger sweeps.") in
  let run () () obs ids full =
    let quick = not full in
    match ids with
    | [] ->
        with_obs obs (fun () ->
            Bbc_experiments.Registry.run_all ~quick fmt;
            `Ok ())
    | ids -> (
        let entries = List.map Bbc_experiments.Registry.find ids in
        match List.find_opt Option.is_none entries with
        | Some _ ->
            `Error
              (false, Printf.sprintf "unknown experiment id; use %s" experiment_range)
        | None ->
            with_obs obs (fun () ->
                List.iter
                  (fun e ->
                    Bbc_experiments.Registry.run_entry ~quick fmt (Option.get e))
                  entries;
                if obs.metrics then Bbc_experiments.Registry.pp_timings fmt;
                `Ok ()))
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run reproduction experiments (paper figures/claims).")
    Term.(ret (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ ids $ full))

let verify_cmd =
  let run () () obs name n k h l seed objective =
    match build_config name ~n ~k ~h ~l ~seed with
    | Error e -> `Error (false, e)
    | Ok (instance, config) ->
        with_obs obs @@ fun () ->
        let stable = Bbc.Stability.is_stable ~objective instance config in
        Format.fprintf fmt "construction: %s (n=%d)@." name (Bbc.Instance.n instance);
        Format.fprintf fmt "objective:    %a@." Bbc.Objective.pp objective;
        Format.fprintf fmt "social cost:  %d@."
          (Bbc.Eval.social_cost ~objective instance config);
        Format.fprintf fmt "stable:       %b@." stable;
        (if not stable then
           match Bbc.Stability.find_deviation ~objective instance config with
           | Some d -> Format.fprintf fmt "deviation:    %a@." Bbc.Stability.pp_deviation d
           | None -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check whether a named construction is a pure Nash equilibrium.")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ name_arg $ n_opt $ k_opt $ h_opt $ l_opt
       $ seed_opt $ objective_opt))

let dynamics_cmd =
  let scheduler_opt =
    let scheduler_conv =
      Arg.enum
        [
          ("round-robin", Bbc.Dynamics.Round_robin);
          ("max-cost", Bbc.Dynamics.Max_cost_first);
        ]
    in
    Arg.(value & opt scheduler_conv Bbc.Dynamics.Round_robin & info [ "scheduler" ] ~doc:"round-robin or max-cost.")
  in
  let rounds_opt = Arg.(value & opt int 200 & info [ "rounds" ] ~doc:"Round budget.") in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print every deviation (the dynamics.activation event stream \
             rendered as text; --trace-out writes the same stream as JSONL).")
  in
  let run () () obs name n k h l seed objective scheduler rounds trace =
    match build_config name ~n ~k ~h ~l ~seed with
    | Error e -> `Error (false, e)
    | Ok (instance, config) ->
        with_obs ~text_trace:trace obs @@ fun () ->
        let outcome =
          Bbc.Dynamics.run ~objective ~scheduler ~max_rounds:rounds instance config
        in
        (* Surface the buffered activation events (text and/or JSONL)
           before the outcome summary, as the ad-hoc printer used to. *)
        Bbc_obs.flush_events ();
        Format.fprintf fmt "outcome: %a@." Bbc.Dynamics.pp_outcome outcome;
        let final = Bbc.Dynamics.final_config outcome in
        Format.fprintf fmt "final social cost: %d@."
          (Bbc.Eval.social_cost ~objective instance final);
        Format.fprintf fmt "strongly connected: %b@."
          (Bbc_graph.Scc.is_strongly_connected (Bbc.Config.to_graph instance final));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "dynamics" ~doc:"Run a best-response walk on a named construction.")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ name_arg $ n_opt $ k_opt $ h_opt $ l_opt
       $ seed_opt $ objective_opt $ scheduler_opt $ rounds_opt $ trace))

let search_cmd =
  let limit_opt =
    Arg.(value & opt int 1 & info [ "limit" ] ~doc:"Stop after this many equilibria.")
  in
  let max_profiles_opt =
    Arg.(
      value
      & opt int 100_000_000
      & info [ "max-profiles" ] ~doc:"Abort after examining this many profiles.")
  in
  let run () () obs name n k h l seed objective limit max_profiles =
    match build_config name ~n ~k ~h ~l ~seed with
    | Error e -> `Error (false, e)
    | Ok (instance, _) ->
        with_obs obs @@ fun () ->
        let r = Bbc.Exhaustive.search ~objective ~limit ~max_profiles instance in
        Format.fprintf fmt "construction: %s (n=%d)@." name (Bbc.Instance.n instance);
        Format.fprintf fmt "objective:         %a@." Bbc.Objective.pp objective;
        Format.fprintf fmt "profiles examined: %d@." r.examined;
        Format.fprintf fmt "equilibria found:  %d@." (List.length r.equilibria);
        Format.fprintf fmt "search complete:   %b@." r.complete;
        (match r.equilibria with
        | c :: _ ->
            Format.fprintf fmt "first equilibrium social cost: %d@."
              (Bbc.Eval.social_cost ~objective instance c)
        | [] -> ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Exhaustively search a construction's instance for pure Nash equilibria.")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ name_arg $ n_opt $ k_opt $ h_opt $ l_opt
       $ seed_opt $ objective_opt $ limit_opt $ max_profiles_opt))

let dot_cmd =
  let run name n k h l seed =
    match build_config name ~n ~k ~h ~l ~seed with
    | Error e -> `Error (false, e)
    | Ok (instance, config) ->
        print_string (Bbc_graph.Dot.to_dot (Bbc.Config.to_graph instance config));
        `Ok ()
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the realized graph of a construction in Graphviz format.")
    Term.(ret (const run $ name_arg $ n_opt $ k_opt $ h_opt $ l_opt $ seed_opt))

let reduce_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DIMACS CNF file.")
  in
  let run file =
    match Bbc_sat.Dimacs.parse_file file with
    | Error e -> `Error (false, e)
    | Ok formula -> (
        let t = Bbc.Reduction.build formula in
        Format.fprintf fmt "formula: %d vars, %d clauses@."
          (Bbc_sat.Cnf.num_vars formula)
          (Bbc_sat.Cnf.num_clauses formula);
        Format.fprintf fmt "game: %d nodes@." (Bbc.Instance.n t.instance);
        match Bbc_sat.Solver.solve formula with
        | Bbc_sat.Solver.Sat assignment ->
            let config = Bbc.Reduction.encode t assignment in
            Format.fprintf fmt "satisfiable; encoded profile stable: %b@."
              (Bbc.Stability.is_stable t.instance config);
            `Ok ()
        | Bbc_sat.Solver.Unsat ->
            Format.fprintf fmt "unsatisfiable; the game has no pure NE (Theorem 2)@.";
            `Ok ())
  in
  Cmd.v
    (Cmd.info "reduce" ~doc:"Run the Theorem-2 reduction on a DIMACS formula.")
    Term.(ret (const run $ file))

let save_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Instance output file.")
  in
  let config_out =
    Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE" ~doc:"Also save the configuration here.")
  in
  let run name n k h l seed out config_out =
    match build_config name ~n ~k ~h ~l ~seed with
    | Error e -> `Error (false, e)
    | Ok (instance, config) -> (
        match Bbc.Codec.save_instance out instance with
        | Error e -> `Error (false, e)
        | Ok () -> (
            Format.fprintf fmt "wrote %s (%d nodes)@." out (Bbc.Instance.n instance);
            match config_out with
            | None -> `Ok ()
            | Some path -> (
                match Bbc.Codec.save_config path config with
                | Error e -> `Error (false, e)
                | Ok () ->
                    Format.fprintf fmt "wrote %s@." path;
                    `Ok ())))
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a named construction to the bbc text format.")
    Term.(ret (const run $ name_arg $ n_opt $ k_opt $ h_opt $ l_opt $ seed_opt $ out $ config_out))

let load_cmd =
  let instance_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc:"Instance file.")
  in
  let config_file =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"CONFIG" ~doc:"Optional configuration file to verify.")
  in
  let run () () instance_file config_file objective =
    match Bbc.Codec.load_instance instance_file with
    | Error e -> `Error (false, e)
    | Ok instance -> (
        Format.fprintf fmt "loaded %a@." Bbc.Instance.pp instance;
        match config_file with
        | None -> `Ok ()
        | Some path -> (
            match Bbc.Codec.load_config path with
            | Error e -> `Error (false, e)
            | Ok config ->
                if Bbc.Config.n config <> Bbc.Instance.n instance then
                  `Error (false, "configuration size does not match instance")
                else begin
                  Format.fprintf fmt "feasible: %b@." (Bbc.Config.feasible instance config);
                  Format.fprintf fmt "social cost (%a): %d@." Bbc.Objective.pp objective
                    (Bbc.Eval.social_cost ~objective instance config);
                  Format.fprintf fmt "stable: %b@."
                    (Bbc.Stability.is_stable ~objective instance config);
                  `Ok ()
                end))
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load an instance (and optionally verify a configuration).")
    Term.(ret (const run $ jobs_opt $ no_incremental_opt $ instance_file $ config_file $ objective_opt))

let convert_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Instance or configuration file (text or JSON; auto-detected).")
  in
  let to_fmt =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Json & info [ "to" ] ~docv:"FORMAT" ~doc:"Output format: text or json.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file (stdout when omitted).")
  in
  (* Read, validate, normalize, re-emit: the payload kind and input
     format are both self-describing (bbc-instance/bbc-config headers in
     text, "type" fields in JSON), so conversion needs no flags beyond
     the target format. *)
  let run file to_fmt out =
    match
      let text =
        let ic = open_in_bin file in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        really_input_string ic (in_channel_length ic)
      in
      match Bbc.Codec.instance_of_any_string text with
      | Ok instance -> (
          match to_fmt with
          | `Text -> Ok (Bbc.Codec.instance_to_string instance)
          | `Json -> Ok (Bbc.Json.to_string (Bbc.Codec.instance_to_json instance) ^ "\n"))
      | Error inst_err -> (
          match Bbc.Codec.config_of_any_string text with
          | Ok config -> (
              match to_fmt with
              | `Text -> Ok (Bbc.Codec.config_to_string config)
              | `Json -> Ok (Bbc.Json.to_string (Bbc.Codec.config_to_json config) ^ "\n"))
          | Error cfg_err ->
              Error
                (Printf.sprintf "%s: not an instance (%s) nor a configuration (%s)"
                   file inst_err cfg_err))
    with
    | Error e -> `Error (false, e)
    | Ok payload -> (
        match out with
        | None ->
            print_string payload;
            `Ok ()
        | Some path ->
            let oc = open_out_bin path in
            Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
                output_string oc payload);
            Format.fprintf fmt "wrote %s@." path;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Read, validate and re-emit an instance or configuration (text <-> JSON).")
    Term.(ret (const run $ file $ to_fmt $ out))

let serve_cmd =
  let socket_opt =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on this Unix-domain socket.")
  in
  let tcp_opt =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen on this TCP endpoint (port 0 binds an ephemeral port; the resolved endpoint is printed on a 'listening' line).  May be combined with --socket to serve both.")
  in
  let stdio =
    Arg.(value & flag & info [ "stdio" ] ~doc:"Serve one implicit connection on stdin/stdout instead of a socket (testing).")
  in
  let workers_opt =
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc:"Worker processes.  1 (the default) serves in-process; N > 1 forks N workers, each with its own engine and session store, and routes every request to the worker owning its session (hash sharding), so distinct sessions execute truly in parallel.")
  in
  let queue_opt =
    Arg.(value & opt int 256 & info [ "queue" ] ~docv:"N" ~doc:"Admission-queue bound; requests beyond it are rejected with an overloaded error (backpressure).  With --workers N the bound applies per worker.")
  in
  let batch_opt =
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"N" ~doc:"Max requests executed per scheduler batch.")
  in
  let sessions_opt =
    Arg.(value & opt int 1024 & info [ "max-sessions" ] ~docv:"N" ~doc:"Live-session bound (per worker with --workers N).")
  in
  let run () () obs socket tcp stdio workers queue batch sessions =
    if stdio && (socket <> None || tcp <> None) then
      `Error (true, "--stdio is mutually exclusive with --socket/--tcp")
    else if stdio && workers <> 1 then
      `Error (true, "--stdio serves in-process; --workers requires a socket or TCP listener")
    else if (not stdio) && socket = None && tcp = None then
      `Error (true, "a listener is required: --socket PATH, --tcp HOST:PORT, or --stdio")
    else if workers < 1 then `Error (true, "--workers must be >= 1")
    else if queue < 1 || batch < 1 || sessions < 1 then
      `Error (true, "--queue, --batch and --max-sessions must be positive")
    else begin
      (* The daemon always runs with observability on: the stats
         endpoint and latency histograms are part of the service.
         --metrics/--trace-out only control where the data goes on
         exit. *)
      Bbc_obs.enable ();
      let oc = Option.map open_out obs.trace_out in
      Option.iter (fun oc -> Bbc_obs.add_sink (Bbc_obs.jsonl_sink oc)) oc;
      let engine =
        {
          (Bbc_server.Engine.default_config ()) with
          Bbc_server.Engine.queue_cap = queue;
          max_batch = batch;
          session_cap = sessions;
        }
      in
      let serve () =
        if stdio then Bbc_server.Server.run ~engine Bbc_server.Server.Stdio
        else begin
          let listeners =
            (match socket with
            | Some path -> [ Bbc_server.Net.listen_unix path ]
            | None -> [])
            @
            match tcp with
            | Some spec -> (
                match Bbc_server.Net.parse_tcp spec with
                | Ok (host, port) ->
                    [ Bbc_server.Net.listen_tcp ~host ~port () ]
                | Error e -> failwith ("--tcp: " ^ e))
            | None -> []
          in
          (* Scripts and the bench harness parse these lines to learn
             ephemeral ports; keep the format stable. *)
          let announce () =
            List.iter
              (fun (l : Bbc_server.Net.listener) ->
                Printf.printf "listening on %s\n%!"
                  (Bbc_server.Net.endpoint_to_string l.l_endpoint))
              listeners
          in
          if workers = 1 then
            Bbc_server.Server.run ~on_ready:announce ~engine
              (Bbc_server.Server.Listen listeners)
          else
            Bbc_server.Front.run
              ~on_ready:(fun _ -> announce ())
              ~engine ~workers listeners
        end
      in
      match
        Fun.protect
          ~finally:(fun () ->
            Bbc_obs.drain ();
            Option.iter close_out oc;
            if obs.metrics then Bbc_obs.pp_summary fmt;
            Bbc_obs.clear_sinks ())
          serve
      with
      | () -> `Ok ()
      | exception Failure msg -> `Error (false, msg)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the game-analysis service: line-delimited JSON requests (sessions, \
          incremental evaluation, batching, deadlines, backpressure) over \
          Unix-domain sockets and/or TCP, optionally sharded over worker \
          processes (--workers), with graceful drain on SIGINT/SIGTERM.")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ socket_opt
       $ tcp_opt $ stdio $ workers_opt $ queue_opt $ batch_opt $ sessions_opt))

let bigbench_cmd =
  let family_arg =
    let doc =
      "Streaming family: " ^ String.concat ", " Bbc.Catalog.streaming_names ^ "."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let landmarks_opt =
    Arg.(
      value & opt int 64
      & info [ "landmarks" ] ~docv:"L"
          ~doc:
            "Landmark sources for the social-cost estimate ($(docv) >= n runs \
             the exact sweep).")
  in
  let rounds_opt =
    Arg.(
      value & opt int 0
      & info [ "rounds" ] ~docv:"R"
          ~doc:
            "Sampled best-response rounds to run after the estimate (0 = \
             none).  This materializes the per-node strategy arrays, so keep \
             n moderate.")
  in
  let sample_opt =
    Arg.(
      value & opt int 8
      & info [ "sample" ] ~docv:"S"
          ~doc:"Candidate targets sampled per activation when --rounds > 0.")
  in
  let timings_opt =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:
            "Also print wall-clock build/sweep timings and allocation rates \
             (off by default so the output stays reproducible).")
  in
  let run () () obs family n k seed landmarks rounds sample objective timings =
    let params = { Bbc.Catalog.default_params with n; k; seed } in
    (* Time the streaming build itself: allocation delta over the catalog
       call is the builder's footprint (CSR arrays + instance). *)
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    match Bbc.Catalog.build_streaming family params with
    | Error e -> `Error (false, e)
    | Ok (instance, csr) ->
        let t1 = Unix.gettimeofday () in
        let a1 = Gc.allocated_bytes () in
        with_obs obs @@ fun () ->
        let nn = Bbc.Instance.n instance in
        Format.fprintf fmt "family:    %s (n=%d, k=%d, seed=%d)@." family nn k seed;
        Format.fprintf fmt "edges:     %d@." (Bbc_graph.Csr.edge_count csr);
        if timings then
          Format.fprintf fmt "build:     %.1f ms  (%.0f ns/node, %.1f words/node allocated)@."
            ((t1 -. t0) *. 1e3)
            ((t1 -. t0) *. 1e9 /. float_of_int nn)
            ((a1 -. a0) /. 8.0 /. float_of_int nn);
        let t2 = Unix.gettimeofday () in
        let e = Bbc.Approx.social_cost ~objective ~landmarks ~seed instance csr in
        let t3 = Unix.gettimeofday () in
        Format.fprintf fmt "landmarks: %d of %d@." e.Bbc.Approx.landmarks nn;
        if e.Bbc.Approx.exact then
          Format.fprintf fmt "social cost (%a): %.0f (exact)@." Bbc.Objective.pp
            objective e.Bbc.Approx.value
        else
          Format.fprintf fmt "social cost (%a): %.1f +- %.1f (estimated)@."
            Bbc.Objective.pp objective e.Bbc.Approx.value e.Bbc.Approx.bound;
        if timings then
          Format.fprintf fmt "sweep:     %.1f ms  (%.2f ms/landmark)@."
            ((t3 -. t2) *. 1e3)
            ((t3 -. t2) *. 1e3 /. float_of_int (max 1 e.Bbc.Approx.landmarks));
        if rounds > 0 then begin
          match Bbc.Catalog.build_streaming_reference family params with
          | Error e -> `Error (false, e)
          | Ok (instance, config) ->
              let outcome =
                Bbc.Dynamics.run ~objective
                  ~policy:(Bbc.Dynamics.Sampled_best_response { sample; seed })
                  ~scheduler:Bbc.Dynamics.Round_robin ~max_rounds:rounds instance
                  config
              in
              Format.fprintf fmt "dynamics:  %a@." Bbc.Dynamics.pp_outcome outcome;
              let final = Bbc.Dynamics.final_config outcome in
              let fcsr = Bbc.Config.to_csr instance final in
              let e = Bbc.Approx.social_cost ~objective ~landmarks ~seed instance fcsr in
              if e.Bbc.Approx.exact then
                Format.fprintf fmt "final social cost: %.0f (exact)@." e.Bbc.Approx.value
              else
                Format.fprintf fmt "final social cost: %.1f +- %.1f (estimated)@."
                  e.Bbc.Approx.value e.Bbc.Approx.bound;
              `Ok ()
        end
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "bigbench"
       ~doc:
         "Build a large streaming instance straight into a CSR snapshot and \
          estimate its social cost from landmark sweeps (optionally followed \
          by sampled best-response rounds).")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ family_arg $ n_opt
       $ k_opt $ seed_opt $ landmarks_opt $ rounds_opt $ sample_opt $ objective_opt
       $ timings_opt))

let fuzz_cmd =
  let suite_opt =
    let doc =
      "Differential suite to run: all (= csr, incr, br, server, campaign), or one of "
      ^ String.concat ", " Bbc_fuzz.Diff.suite_names
      ^ ".  selfcheck is expected to fail: it fuzzes a deliberately broken \
         test-only oracle to prove the harness finds and shrinks planted bugs."
    in
    Arg.(value & opt string "all" & info [ "suite" ] ~docv:"NAME" ~doc)
  in
  let count_opt =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Generated cases per property.")
  in
  let shrink_opt =
    Arg.(
      value & opt int 1000
      & info [ "max-shrink-steps" ] ~docv:"N"
          ~doc:"Property evaluations allowed while shrinking a failure.")
  in
  let run () () obs suite seed count max_shrink_steps =
    if count < 1 || max_shrink_steps < 0 then
      `Error (true, "--count must be positive and --max-shrink-steps non-negative")
    else
      match Bbc_fuzz.Diff.expand_suites suite with
      | Error e -> `Error (false, e)
      | Ok names ->
          with_obs obs @@ fun () ->
          let opts = { Bbc_fuzz.Diff.seed; count; max_shrink_steps } in
          let failures = ref 0 in
          let total_props = ref 0 in
          let total_cases = ref 0 and total_discards = ref 0 in
          let rec go = function
            | [] -> `Ok ()
            | name :: rest -> (
                match Bbc_fuzz.Diff.run_suite opts name with
                | Error e -> `Error (false, e)
                | Ok reports ->
                    Format.fprintf fmt "suite %s@." name;
                    List.iter
                      (fun (r : Bbc_fuzz.Diff.prop_report) ->
                        incr total_props;
                        total_cases := !total_cases + r.stats.Bbc_fuzz.Runner.cases;
                        total_discards :=
                          !total_discards + r.stats.Bbc_fuzz.Runner.discards;
                        match r.failure with
                        | None ->
                            Format.fprintf fmt "  %-20s %d cases, %d discards: ok@."
                              r.name r.stats.Bbc_fuzz.Runner.cases
                              r.stats.Bbc_fuzz.Runner.discards
                        | Some f ->
                            incr failures;
                            Format.fprintf fmt
                              "  %-20s FAIL at case %d (%d shrink steps)@." r.name
                              f.case f.steps_used;
                            Format.fprintf fmt "    mismatch: %s@." f.message;
                            Format.fprintf fmt "    shrunk instance n = %d@."
                              (Bbc.Instance.n f.instance);
                            Format.fprintf fmt "    instance: %s@."
                              (Bbc.Json.to_string
                                 (Bbc.Codec.instance_to_json f.instance));
                            Option.iter
                              (fun c ->
                                Format.fprintf fmt "    config: %s@."
                                  (Bbc.Json.to_string (Bbc.Codec.config_to_json c)))
                              f.config;
                            if f.detail <> "" then
                              Format.fprintf fmt "    input: %s@." f.detail;
                            Format.fprintf fmt
                              "    replay: bbc fuzz --suite %s --seed %d --count %d@."
                              r.suite seed count)
                      reports;
                    go rest)
          in
          let result = go names in
          (match result with
          | `Ok () ->
              Format.fprintf fmt
                "fuzz: %d properties, %d cases, %d discards, %d failures@."
                !total_props !total_cases !total_discards !failures
          | `Error _ -> ());
          if !failures > 0 then `Error (false, "fuzzing found mismatches")
          else result
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz every engine pair (list-graph vs CSR, scratch vs \
          incremental, exact vs exhaustive best response, server vs direct \
          calls) with structured generators and integrated shrinking; \
          mismatches are shrunk to minimal instances and printed as \
          bbc-convert-loadable JSON.")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ suite_opt
       $ seed_opt $ count_opt $ shrink_opt))

(* ---------------------------------------------------------------- *)
(* Campaigns: checkpointed Monte-Carlo sweeps over the Bbc_campaign
   runner.  --jobs is the shared pool option, so Runner sees jobs=None
   and picks up the (possibly overridden) Bbc_parallel default. *)

let campaign_out_opt =
  Arg.(
    required
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Campaign directory: holds the canonical spec binding, the \
           checkpoint chunks and report.json.  A directory is bound to the \
           first spec run in it.")

let campaign_common =
  let via_server =
    Arg.(
      value
      & opt (some string) None
      & info [ "via-server" ] ~docv:"ENDPOINT"
          ~doc:
            "Execute units over a running $(b,bbc serve) instead of the \
             in-process pool: $(b,unix:PATH), $(b,tcp:HOST:PORT), or \
             $(b,HOST:PORT).  Results are identical either way.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 256
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Units per checkpoint chunk (atomic JSONL shard).")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Extra attempts per unit before quarantining it.")
  in
  let backoff_ms =
    Arg.(
      value & opt int 100
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base of the exponential retry backoff (via-server mode).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~doc:"Report per-chunk progress on stderr.")
  in
  Term.(
    const (fun via_server checkpoint_every retries backoff_ms progress ->
        (via_server, checkpoint_every, retries, backoff_ms, progress))
    $ via_server $ checkpoint_every $ retries $ backoff_ms $ progress)

let exec_campaign obs spec ~out (via_server, checkpoint_every, retries, backoff_ms, progress)
    =
  let mode =
    match via_server with
    | None -> Bbc_campaign.Runner.In_process
    | Some ep -> Bbc_campaign.Runner.Via_server ep
  in
  let opts =
    { Bbc_campaign.Runner.jobs = None; checkpoint_every; retries; backoff_ms; mode }
  in
  let on_chunk ~done_units ~total =
    if progress then Format.eprintf "campaign: %d/%d units@." done_units total
  in
  with_obs obs @@ fun () ->
  match Bbc_campaign.Runner.run ~on_chunk opts ~dir:out spec with
  | Error e -> `Error (false, e)
  | Ok o ->
      Format.fprintf fmt "campaign: %s@." spec.Bbc_campaign.Spec.name;
      Format.fprintf fmt "units:    %d total, %d skipped, %d executed, %d quarantined@."
        o.Bbc_campaign.Runner.total o.skipped o.executed o.quarantined;
      Format.fprintf fmt "report:   %s@." o.report_path;
      `Ok ()

let campaign_run_cmd =
  let spec_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE" ~doc:"Campaign spec (JSON).")
  in
  let run () () obs spec_file out common =
    match Bbc_campaign.Spec.load spec_file with
    | Error e -> `Error (false, e)
    | Ok spec -> exec_campaign obs spec ~out common
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run (or continue) a campaign: expand the spec grid, skip \
          checkpointed units, execute the rest, write report.json.")
    Term.(
      ret
        (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ spec_arg
       $ campaign_out_opt $ campaign_common))

let campaign_resume_cmd =
  let run () () obs out common =
    let spec_path = Bbc_campaign.Checkpoint.spec_path out in
    match Bbc_campaign.Spec.load spec_path with
    | Error e -> `Error (false, e)
    | Ok spec -> exec_campaign obs spec ~out common
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume a campaign from its directory's own spec binding — \
          equivalent to re-running with the original spec file.")
    Term.(
      ret (const run $ jobs_opt $ no_incremental_opt $ obs_opts $ campaign_out_opt
         $ campaign_common))

let campaign_report_cmd =
  let run out =
    match Bbc_campaign.Runner.report ~dir:out with
    | Error e -> `Error (false, e)
    | Ok json ->
        print_endline (Bbc.Json.to_string json);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Recompute and print the aggregate report from the directory's \
          checkpoints without executing anything.")
    Term.(ret (const run $ campaign_out_opt))

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Checkpointed, resumable Monte-Carlo sweeps: a JSON spec expands to \
          a deterministic grid of dynamics trials, executed on the domain \
          pool or over bbc serve, with crash-safe JSONL checkpoints and a \
          streaming aggregate report.")
    [ campaign_run_cmd; campaign_resume_cmd; campaign_report_cmd ]

let () =
  let doc = "Bounded Budget Connection (BBC) games laboratory" in
  let info = Cmd.info "bbc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiment_cmd;
            verify_cmd;
            dynamics_cmd;
            search_cmd;
            dot_cmd;
            reduce_cmd;
            save_cmd;
            load_cmd;
            convert_cmd;
            serve_cmd;
            bigbench_cmd;
            fuzz_cmd;
            campaign_cmd;
          ]))
